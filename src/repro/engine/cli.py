"""``repro`` / ``python -m repro`` — run, list, report and serve scenarios.

Examples::

    repro list
    repro list --tags ablation,noc
    repro run --tags smoke --workers 2
    repro run --names E10 E14 --workers 4 --cache .repro_cache
    repro run --names DSE --sweep seed=1,2,3,4 --shard 0/2
    repro run --tags experiments --out report.json
    repro report report.json --full
    repro bench --tags perf --threshold 0.25
    repro bench --profile --tags perf
    repro serve --port 7341 --workers 4
    repro submit --tags smoke --stream --out report.json
    repro submit --names DSE --sweep seed=1,2,3,4 --shards 4
    repro submit --shutdown
    repro coordinator --port 7452 --journal .repro_cache/journal.jsonl
    repro coordinator --resume --journal .repro_cache/journal.jsonl
    repro worker --connect 127.0.0.1:7452 --cache .worker_cache
    repro submit --port 7452 --attach job-1 --out resumed.json
    repro cache --prune --max-entries 500
    repro cache --stats
    repro run --tags smoke --warehouse .repro_cache/warehouse.sqlite
    repro query --scenario E10 --since 2026-08-01 --agg mean:wall_time
    repro query --ingest-trajectory BENCH_TRAJECTORY.json
    repro status --port 7452 --watch

(``repro`` is the installed console script; ``PYTHONPATH=src python -m
repro`` is the equivalent from a bare checkout.)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.engine import registry
from repro.engine.cache import ResultCache
from repro.engine.executor import execute
from repro.engine.results import Report, ScenarioResult


def _split_tags(value: Optional[str]) -> Optional[List[str]]:
    if not value:
        return None
    return [t.strip() for t in value.split(",") if t.strip()]


def _selected(args) -> list:
    tags = _split_tags(args.tags)
    names = args.names or None
    return registry.select(tags=tags, names=names)


def _parse_sweep(entries: Optional[List[str]]) -> dict:
    """``PARAM=V1,V2,...`` options into sweep axes (JSON-ish values)."""
    axes: dict = {}
    for entry in entries or ():
        if "=" not in entry:
            raise ValueError(
                f"--sweep needs PARAM=V1,V2,... (got {entry!r})"
            )
        name, _eq, values = entry.partition("=")
        parsed = []
        for raw in values.split(","):
            raw = raw.strip()
            if not raw:
                continue  # "p=" or "p=1,,2": empty is never a value
            try:
                parsed.append(json.loads(raw))
            except json.JSONDecodeError:
                parsed.append(raw)  # bare strings stay strings
        if not parsed:
            raise ValueError(f"--sweep axis {name!r} has no values")
        axes[name.strip()] = parsed
    return axes


def _sweep_and_shard(specs: list, args) -> list:
    """Apply ``--sweep`` expansion and ``--shard i/N`` selection."""
    from repro.service.shard import expand_specs, parse_shard, shard_specs

    axes = _parse_sweep(getattr(args, "sweep", None))
    if axes:
        specs = expand_specs(specs, axes)
    if getattr(args, "shard", None):
        index, total = parse_shard(args.shard)
        specs = shard_specs(specs, index, total)
    return specs


def _progress_printer(quiet: bool):
    def progress(result: ScenarioResult) -> None:
        if quiet:
            return
        origin = "cached" if result.cached else result.backend
        # per-result progress is a diagnostic: stderr, so stdout stays
        # clean for the report / JSON that scripts consume
        print(
            f"  {result.name:<14} {result.status:<7} "
            f"[{origin}] {result.elapsed_s:.2f}s",
            file=sys.stderr,
            flush=True,
        )

    return progress


#: default warehouse location shared by the recording and query sides.
DEFAULT_WAREHOUSE = ".repro_cache/warehouse.sqlite"
DEFAULT_HTTP_PORT = 7470  # keep in sync with repro.telemetry.httpd


def _warehouse_path(args, *, require: bool = False) -> Optional[str]:
    """--warehouse/--db beats REPRO_WAREHOUSE; None means 'off'."""
    path = (
        getattr(args, "warehouse", None)
        or getattr(args, "db", None)
        or os.environ.get("REPRO_WAREHOUSE")
    )
    if path is None and require:
        return DEFAULT_WAREHOUSE
    return path


def cmd_list(args) -> int:
    from repro.analysis.report import format_table

    entries = _selected(args)
    if args.format == "json":
        print(
            json.dumps(
                [e.spec.to_dict() | {"doc": e.doc} for e in entries],
                indent=1,
            )
        )
        return 0
    rows = [
        {
            "scenario": e.name,
            "tags": ",".join(sorted(e.spec.tags)),
            "module": e.module.replace("repro.", ""),
            "doc": e.doc[:60],
        }
        for e in entries
    ]
    print(format_table(rows) if rows else "(no scenarios match)")
    print(f"\n{len(rows)} scenarios; tags: "
          + ", ".join(f"{t}({n})" for t, n in registry.all_tags().items()))
    return 0


def cmd_run(args) -> int:
    entries = _selected(args)
    if not entries:
        print("no scenarios selected", file=sys.stderr)
        return 2
    try:
        specs = _sweep_and_shard([e.spec for e in entries], args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not specs:
        print("shard selects zero specs", file=sys.stderr)
        return 2
    cache = None if args.no_cache else ResultCache(args.cache)
    progress = _progress_printer(args.quiet)

    warehouse = None
    warehouse_path = _warehouse_path(args)
    if warehouse_path:
        from repro.telemetry.warehouse import ResultsWarehouse

        warehouse = ResultsWarehouse(warehouse_path, source="local")

        def progress(result, _progress=progress):  # noqa: F811
            warehouse.record_result(result)
            _progress(result)

    try:
        report = execute(
            specs,
            workers=args.workers,
            timeout_s=args.timeout,
            backend=args.backend,
            cache=cache,
            progress=progress,
        )
    finally:
        if warehouse is not None:
            warehouse.close()
    if not args.quiet:
        print(file=sys.stderr)
    print(report.render())
    if args.out:
        path = report.save(args.out)
        print(f"\nwrote {path}")
    return 1 if report.failed else 0


def cmd_bench(args) -> int:
    from repro.engine.perf import run_bench, run_profile

    if args.profile:
        return run_profile(
            tags=_split_tags(args.tags),
            names=args.names or None,
            out=args.profile_out,
            quiet=args.quiet,
        )
    return run_bench(
        tags=_split_tags(args.tags),
        names=args.names or None,
        workers=args.workers,
        timeout_s=args.timeout,
        out=args.out,
        trajectory=None if args.no_trajectory else args.trajectory,
        baseline="" if args.no_compare else args.baseline,
        threshold=args.threshold,
        cache_dir=args.cache,
        quiet=args.quiet,
    )


def _auth_token(args) -> Optional[str]:
    """--auth-token beats REPRO_AUTH_TOKEN beats an open listener."""
    return args.auth_token or os.environ.get("REPRO_AUTH_TOKEN") or None


def _run_listener(server, what: str, describe: str) -> int:
    import asyncio

    from repro.service.protocol import PROTOCOL_VERSION

    async def _serve() -> None:
        await server.start()
        guarded = "token-guarded" if server.auth_token else "open"
        print(
            f"{what} on {server.host}:{server.port} "
            f"(protocol v{PROTOCOL_VERSION}, {guarded}, {describe})",
            flush=True,
        )
        await server.wait_stopped()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    print(f"{what} stopped")
    return 0


def cmd_serve(args) -> int:
    from repro.service.backend import make_service_backend
    from repro.service.server import ScenarioServer

    backend = make_service_backend(
        "local",
        workers=args.workers,
        timeout_s=args.timeout,
        executor=args.backend,
        cache=None if args.no_cache else args.cache,
        warehouse=_warehouse_path(args),
    )
    server = ScenarioServer(
        backend,
        host=args.host,
        port=args.port,
        auth_token=_auth_token(args),
        max_pending=args.max_pending,
    )
    return _run_listener(
        server, "serving scenarios", f"backend {backend.describe()}"
    )


def cmd_coordinator(args) -> int:
    from repro.cluster.chaos import ChaosError, ChaosMonkey
    from repro.cluster.coordinator import ClusterCoordinator

    chaos = None
    if args.chaos:
        try:
            chaos = ChaosMonkey.parse(args.chaos)
        except ChaosError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    supervisor = None
    if args.max_workers > 0:
        from repro.cluster.supervisor import (
            WorkerSupervisor, process_spawner,
        )

        # the children connect back to the listener we are about to
        # start; port 0 (pick-a-free-port) cannot be supervised this
        # way because the spawner needs the address up front
        if args.port == 0:
            print(
                "error: --max-workers needs a fixed --port "
                "(supervised workers dial back in)",
                file=sys.stderr,
            )
            return 2
        supervisor = WorkerSupervisor(
            process_spawner(
                f"{args.host}:{args.port}",
                cache_dir=args.worker_cache_dir,
                auth_token=_auth_token(args),
            ),
            min_workers=args.min_workers,
            max_workers=args.max_workers,
            specs_per_worker=args.specs_per_worker,
            crash_threshold=args.crash_threshold,
            crash_window_s=args.crash_window,
        )
    server = ClusterCoordinator(
        host=args.host,
        port=args.port,
        journal_path=None if args.no_journal else args.journal,
        resume=args.resume,
        lease_timeout_s=args.lease_timeout,
        auth_token=_auth_token(args),
        max_pending=args.max_pending,
        warehouse=_warehouse_path(args),
        max_spec_retries=args.max_spec_retries,
        compact_every=args.compact_every,
        supervisor=supervisor,
        chaos=chaos,
    )
    journal = "journal off" if args.no_journal else f"journal {args.journal}"
    supervised = (
        f", supervising {args.min_workers}-{args.max_workers} workers"
        if supervisor is not None else ""
    )
    armed = f", chaos [{chaos.describe()}]" if chaos is not None else ""
    return _run_listener(
        server, "coordinating scenarios",
        f"{journal}, lease timeout {args.lease_timeout:g}s"
        f"{supervised}{armed}",
    )


def cmd_federate(args) -> int:
    from repro.cluster.federation import FederatedCoordinator

    pools = []
    for entry in args.pool or ():
        host, _colon, port = entry.rpartition(":")
        if not host or not port.isdigit():
            print(f"error: --pool {entry!r} must be HOST:PORT",
                  file=sys.stderr)
            return 2
        pools.append((host, int(port)))
    server = FederatedCoordinator(
        host=args.host,
        port=args.port,
        pools=pools,
        journal_path=None if args.no_journal else args.journal,
        resume=args.resume,
        auth_token=_auth_token(args),
        max_pending=args.max_pending,
        warehouse=_warehouse_path(args),
        max_spec_retries=args.max_spec_retries,
        compact_every=args.compact_every,
        chunk_specs=args.chunk_specs,
        probe_interval_s=args.probe_interval,
        failure_threshold=args.failure_threshold,
    )
    journal = "journal off" if args.no_journal else f"journal {args.journal}"
    return _run_listener(
        server, "federating scenarios",
        f"{journal}, {len(pools)} pools, "
        f"probe every {args.probe_interval:g}s",
    )


def cmd_worker(args) -> int:
    import signal

    from repro.cluster.chaos import ChaosError, ChaosMonkey
    from repro.cluster.worker import ClusterWorker, WorkerError

    try:
        host, _colon, port_s = args.connect.rpartition(":")
        port = int(port_s)
        if not host:
            raise ValueError
    except ValueError:
        print(f"error: --connect needs host:port, got {args.connect!r}",
              file=sys.stderr)
        return 2
    try:
        chaos = (ChaosMonkey.parse(args.chaos) if args.chaos
                 else ChaosMonkey.from_env())
    except ChaosError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    worker = ClusterWorker(
        host,
        port,
        name=args.name,
        capacity=args.capacity,
        cache=None if args.no_cache else args.cache,
        max_cache_entries=args.max_cache_entries,
        auth_token=_auth_token(args),
        connect_retries=args.retry,
        reconnects=args.reconnects,
        quiet=args.quiet,
        chaos=chaos,
    )

    # first SIGTERM/SIGINT drains (finish the in-flight spec, release
    # unstarted leases); a second one stops hard
    def _on_signal(signum, _frame):
        if worker._drain.is_set() or worker._stop.is_set():
            worker.stop()
        else:
            worker.drain()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _on_signal)
        except (ValueError, OSError):
            pass  # non-main thread or exotic platform: skip

    armed = f", chaos [{chaos.describe()}]" if chaos is not None else ""
    print(
        f"worker {worker.name} connecting to {host}:{port} "
        f"(capacity {worker.capacity}{armed})",
        flush=True,
    )
    try:
        executed = worker.run()
    except KeyboardInterrupt:
        worker.stop()
        executed = worker.executed
    except WorkerError as exc:
        print(f"coordinator refused this worker: {exc}", file=sys.stderr)
        return 2
    drained = (f" (drained, released {worker.released} leases)"
               if worker.released else "")
    print(f"worker {worker.name} stopped after {executed} specs{drained}")
    return 0


def cmd_cache(args) -> int:
    from repro.engine.cache import ResultCache

    cache = ResultCache(args.dir)
    stats = cache.stats()
    if args.stats:
        print(json.dumps(stats, indent=1, sort_keys=True))
        return 0
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} entries from {args.dir}")
        return 0
    if args.prune:
        if args.max_entries is None:
            print("error: --prune needs --max-entries N", file=sys.stderr)
            return 2
        removed = cache.prune(args.max_entries)
        stats = cache.stats()
        print(
            f"pruned {removed} entries (LRU by mtime); "
            f"{stats['entries']} remain in {args.dir}"
        )
        return 0
    print(
        f"{stats['entries']} entries ({stats['bytes']} bytes) in "
        f"{stats['root']}: {stats['current_version']} under current "
        f"code version {stats['code_version']}, {stats['stale']} stale"
    )
    return 0


def cmd_status(args) -> int:
    """One status snapshot, or a live ``--watch`` feed.

    ``--watch`` subscribes via the ``watch`` protocol frame: the server
    pushes a status snapshot at most every ``--interval`` seconds and
    only when something changed, so N watchers cost the listener N
    bounded queues instead of N polling connections.  Against an older
    server (the watch frame answered ``unknown-type``/``unsupported``)
    — or under ``--poll`` — it falls back to the classic poll loop.
    Either way a dropped listener is not fatal: reconnects are paced
    with jittered exponential backoff (so a restarting coordinator
    isn't stampeded) and a one-line stderr notice marks reattachment.
    """
    import time

    from repro.service.backoff import Backoff
    from repro.service.client import ServiceClient, ServiceError

    if not args.watch:
        try:
            with ServiceClient(
                args.host, args.port, retries=args.retry,
                timeout=args.timeout, auth_token=_auth_token(args),
            ) as client:
                snapshot = client.status_full(args.job)
        except ServiceError as exc:
            print(f"service error: {exc}", file=sys.stderr)
            return 2
        print(json.dumps(snapshot, indent=1, sort_keys=True), flush=True)
        return 0
    use_poll = bool(getattr(args, "poll", False))
    backoff = Backoff(base_s=max(0.5, args.interval / 2), max_s=30.0)
    disconnected = False

    def _reattached() -> None:
        nonlocal disconnected
        if disconnected:
            print(f"watch: reattached to {args.host}:{args.port}",
                  file=sys.stderr, flush=True)
            disconnected = False
            backoff.reset()

    try:
        while True:
            try:
                with ServiceClient(
                    args.host, args.port, retries=args.retry,
                    timeout=args.timeout, auth_token=_auth_token(args),
                ) as client:
                    if use_poll:
                        snapshot = client.status_full(args.job)
                        _reattached()
                        print(json.dumps(snapshot, indent=1,
                                         sort_keys=True), flush=True)
                    else:
                        for snapshot in client.watch_status(
                            args.interval, job=args.job
                        ):
                            _reattached()
                            print(json.dumps(snapshot, indent=1,
                                             sort_keys=True), flush=True)
            except ServiceError as exc:
                if (not use_poll
                        and exc.code in ("unknown-type", "unsupported")):
                    print(
                        "watch: server predates the watch frame; "
                        "falling back to polling",
                        file=sys.stderr, flush=True,
                    )
                    use_poll = True
                    continue
                if not disconnected:
                    print(
                        f"watch: lost {args.host}:{args.port} ({exc}); "
                        "retrying with backoff",
                        file=sys.stderr, flush=True,
                    )
                    disconnected = True
                time.sleep(backoff.next_delay())
                continue
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _query_filters(args) -> dict:
    filters: dict = {}
    for key in ("scenario", "status", "job", "spec_hash", "source",
                "code_version", "since", "until"):
        value = getattr(args, key, None)
        if value is not None:
            filters[key] = value
    if args.cached is not None:
        filters["cached"] = args.cached == "yes"
    return filters


def _print_rows(rows: list, fmt: str) -> None:
    if fmt == "json":
        print(json.dumps(rows, indent=1))
        return
    from repro.analysis.report import format_table

    print(format_table(rows))


def _query_display_row(row: dict) -> dict:
    """Trim a warehouse row to the columns a terminal table can hold."""
    from datetime import datetime, timezone

    when = datetime.fromtimestamp(
        row["recorded_at"], tz=timezone.utc
    ).strftime("%Y-%m-%dT%H:%M:%SZ")
    return {
        "recorded_at": when,
        "scenario": row["scenario"],
        "status": row["status"],
        "wall_s": f"{row['wall_time_s']:.3f}",
        "cached": "yes" if row["cached"] else "no",
        "headline": (
            f"{row['headline_name']}={row['headline_value']:.4g}"
            if row["headline_name"] and row["headline_value"] is not None
            else ""
        ),
        "job": row["job_id"],
        "spec": row["spec_hash"][:12],
        "source": row["source"],
    }


def cmd_query(args) -> int:
    from repro.telemetry.warehouse import ResultsWarehouse, WarehouseError

    db = _warehouse_path(args, require=True)
    if not args.ingest_trajectory and not os.path.exists(db):
        print(
            f"error: no warehouse at {db} (record one with "
            "repro run/serve/coordinator --warehouse PATH)",
            file=sys.stderr,
        )
        return 2
    try:
        with ResultsWarehouse(db) as warehouse:
            if args.ingest_trajectory:
                added = warehouse.ingest_trajectory(args.ingest_trajectory)
                print(f"ingested {added} bench rows into {db}")
                return 0
            if args.retain_days is not None or args.retain_rows is not None:
                summary = warehouse.retain(
                    days=args.retain_days, rows=args.retain_rows,
                    vacuum=not args.no_vacuum,
                )
                print(json.dumps(summary, indent=1, sort_keys=True))
                return 0
            if args.serve:
                from repro.telemetry.httpd import WarehouseHTTP

                try:
                    httpd = WarehouseHTTP(
                        warehouse, host=args.http_host,
                        port=args.http_port,
                    )
                except OSError as exc:
                    print(
                        f"error: cannot bind "
                        f"{args.http_host}:{args.http_port} ({exc})",
                        file=sys.stderr,
                    )
                    return 2
                print(json.dumps({"serving": httpd.url, "db": db}),
                      flush=True)
                try:
                    httpd.serve_forever()
                except KeyboardInterrupt:
                    pass
                finally:
                    httpd.shutdown()
                return 0
            if args.stats:
                print(json.dumps(warehouse.stats(), indent=1,
                                 sort_keys=True))
                return 0
            filters = _query_filters(args)
            if args.bench_trend:
                rows = warehouse.bench_trend(args.scenario, args.limit)
                _print_rows(rows, args.format)
                return 0
            if args.agg:
                rows = warehouse.aggregate(
                    args.agg, group_by=args.group_by, **filters
                )
                _print_rows(rows, args.format)
                return 0
            if args.count:
                print(warehouse.count(**filters))
                return 0
            rows = warehouse.query(limit=args.limit, **filters)
            if args.format == "json":
                _print_rows(rows, "json")
            else:
                _print_rows(
                    [_query_display_row(r) for r in rows], "table"
                )
            return 0
    except WarehouseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def cmd_submit(args) -> int:
    from repro.service.client import ServiceClient, ServiceError

    selection = bool(args.tags or args.names)
    if (not selection and not args.shutdown and not args.attach
            and not args.pool):
        print("no scenarios selected (use --tags/--names, --attach JOB "
              "to re-stream a job, --pool HOST:PORT to attach a pool "
              "to a federation front, or --shutdown to stop the "
              "server)",
              file=sys.stderr)
        return 2
    try:
        with ServiceClient(
            args.host, args.port, retries=args.retry,
            timeout=args.timeout, auth_token=_auth_token(args),
        ) as client:
            rc = 0
            for entry in args.pool or ():
                host, _colon, port = entry.rpartition(":")
                if not host or not port.isdigit():
                    print(f"error: --pool {entry!r} must be HOST:PORT",
                          file=sys.stderr)
                    return 2
                name = client.register_pool(host, int(port))
                print(f"registered pool {name} ({host}:{port}) on "
                      f"{args.host}:{args.port}")
            if selection:
                rc = _submit_selection(client, args)
            if args.attach:
                rc = max(rc, _attach_job(client, args))
            if args.shutdown:
                client.shutdown()
                print(f"sent shutdown to {args.host}:{args.port}")
            return rc
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _attach_job(client, args) -> int:
    """Re-attach to a running/finished job and render its report."""
    results = []
    progress = _progress_printer(args.quiet)
    for result in client.stream_job(args.attach):
        results.append(result)
        progress(result)
    report = Report(results=results)
    if not args.quiet:
        print()
    print(report.render())
    if args.out:
        path = report.save(args.out)
        print(f"\nwrote {path}")
    done = client.last_done or {}
    return 1 if report.failed or done.get("cancelled") else 0


def _submit_selection(client, args) -> int:
    from repro.service.shard import parse_shard

    entries = _selected(args)
    specs = [e.spec for e in entries]
    axes = _parse_sweep(args.sweep) or None
    shard = list(parse_shard(args.shard)) if args.shard else None
    results = client.submit(
        specs,
        sweep=axes,
        shards=args.shards,
        shard=shard,
        progress=_progress_printer(args.quiet),
    )
    report = Report(results=results)
    if not args.quiet:
        print()
    print(report.render())
    done = client.last_done or {}
    if done.get("cancelled"):
        print("(job was cancelled before completing)")
    if args.out:
        path = report.save(args.out)
        print(f"\nwrote {path}")
    return 1 if report.failed or done.get("cancelled") else 0


def cmd_report(args) -> int:
    from repro.analysis.report import format_table, render_experiment

    report = Report.load(args.path)
    print(report.render())
    if args.full:
        for result in report:
            print()
            print(
                render_experiment(
                    result.name,
                    {
                        "claim": result.claim,
                        "rows": result.rows,
                        "verdict": result.verdict,
                    },
                )
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Scenario engine for the DAC'03 SoC reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_selection(p):
        p.add_argument(
            "--tags",
            help="comma-separated tag filter (any-match), e.g. "
            "'ablation,noc'",
        )
        p.add_argument(
            "--names", nargs="*", help="explicit scenario names, e.g. E1 A3"
        )

    p_list = sub.add_parser("list", help="list registered scenarios")
    add_selection(p_list)
    p_list.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    p_list.set_defaults(fn=cmd_list)

    def add_sweep(p):
        p.add_argument(
            "--sweep", action="append", metavar="PARAM=V1,V2,...",
            help="fan each selected spec out over these param values "
            "(repeatable; cross product across axes)",
        )
        p.add_argument(
            "--shard", metavar="I/N",
            help="keep only round-robin shard I of N over the "
            "(expanded) spec list, e.g. --shard 0/4",
        )

    def add_warehouse(p):
        p.add_argument(
            "--warehouse", default=None, metavar="PATH",
            help="record every result as a row in this sqlite results "
            "warehouse (falls back to REPRO_WAREHOUSE; off by default)",
        )

    p_run = sub.add_parser("run", help="execute selected scenarios")
    add_selection(p_run)
    add_sweep(p_run)
    add_warehouse(p_run)
    p_run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (>1 enables the process backend)",
    )
    p_run.add_argument(
        "--backend", choices=("auto", "serial", "process"), default="auto"
    )
    p_run.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout (s)"
    )
    p_run.add_argument(
        "--cache", default=".repro_cache",
        help="result-cache directory (default .repro_cache)",
    )
    p_run.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache"
    )
    p_run.add_argument("--out", help="write the aggregated report JSON here")
    p_run.add_argument("--quiet", action="store_true")
    p_run.set_defaults(fn=cmd_run)

    p_bench = sub.add_parser(
        "bench",
        help="run benchmarks, append the perf trajectory, gate regressions",
    )
    add_selection(p_bench)
    p_bench.add_argument("--workers", type=int, default=4)
    p_bench.add_argument(
        "--timeout", type=float, default=300.0, help="per-job timeout (s)"
    )
    p_bench.add_argument(
        "--out", default="BENCH_RESULTS.json",
        help="bench results payload (default BENCH_RESULTS.json)",
    )
    p_bench.add_argument(
        "--trajectory", default="BENCH_TRAJECTORY.json",
        help="append-only perf trajectory log",
    )
    p_bench.add_argument(
        "--no-trajectory", action="store_true",
        help="skip the trajectory append",
    )
    p_bench.add_argument(
        "--baseline", default=None,
        help="baseline payload to gate against (default: --out before "
        "this run, i.e. the committed results)",
    )
    p_bench.add_argument(
        "--no-compare", action="store_true", help="skip the regression gate"
    )
    p_bench.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed wall-time growth before the gate fails (default 0.25)",
    )
    p_bench.add_argument(
        "--cache", default=None,
        help="optional result-cache dir (benchmarks default to uncached "
        "so wall times are real)",
    )
    p_bench.add_argument(
        "--profile", action="store_true",
        help="cProfile each scenario serially and write the top-20 "
        "cumulative functions per scenario (skips the trajectory and "
        "the regression gate: instrumented times are not comparable)",
    )
    p_bench.add_argument(
        "--profile-out", default="BENCH_PROFILE.json",
        help="profile payload path (default BENCH_PROFILE.json)",
    )
    p_bench.add_argument("--quiet", action="store_true")
    p_bench.set_defaults(fn=cmd_bench)

    def add_listener_hardening(p):
        p.add_argument(
            "--auth-token", default=None,
            help="shared-secret listener auth (falls back to the "
            "REPRO_AUTH_TOKEN env var); unauthenticated frames get a "
            "structured 'unauthorized' error",
        )
        p.add_argument(
            "--max-pending", type=int, default=None,
            help="backpressure: cap on accepted-but-incomplete specs; "
            "over-limit submits get a structured 'busy' rejection",
        )

    p_serve = sub.add_parser(
        "serve",
        help="run the scenario service (specs in, streamed results out)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=7341,
        help="listen port (0 picks a free one; default 7341)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2,
        help="worker processes behind the local backend",
    )
    p_serve.add_argument(
        "--backend", choices=("auto", "serial", "process"), default="auto"
    )
    p_serve.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout (s)"
    )
    p_serve.add_argument(
        "--cache", default=".repro_cache",
        help="result-cache directory (default .repro_cache)",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache"
    )
    add_listener_hardening(p_serve)
    add_warehouse(p_serve)
    p_serve.set_defaults(fn=cmd_serve)

    p_coord = sub.add_parser(
        "coordinator",
        help="run the cluster coordinator (clients submit, workers lease)",
    )
    p_coord.add_argument("--host", default="127.0.0.1")
    p_coord.add_argument(
        "--port", type=int, default=7452,
        help="listen port (0 picks a free one; default 7452)",
    )
    p_coord.add_argument(
        "--journal", default=".repro_cache/coordinator_journal.jsonl",
        help="append-only JSONL job journal "
        "(default .repro_cache/coordinator_journal.jsonl)",
    )
    p_coord.add_argument(
        "--no-journal", action="store_true",
        help="run without durability (crash loses in-flight jobs)",
    )
    p_coord.add_argument(
        "--resume", action="store_true",
        help="replay the journal on startup and finish half-done jobs "
        "without re-executing completed specs",
    )
    p_coord.add_argument(
        "--lease-timeout", type=float, default=30.0,
        help="seconds without a heartbeat before a worker's leases are "
        "requeued (default 30)",
    )
    p_coord.add_argument(
        "--compact-every", type=int, default=1000,
        help="compact the journal into a snapshot every N records "
        "(0 disables; default 1000)",
    )
    p_coord.add_argument(
        "--max-spec-retries", type=int, default=5,
        help="involuntary requeues before a spec is quarantined as a "
        "structured failure (default 5)",
    )
    p_coord.add_argument(
        "--min-workers", type=int, default=0,
        help="supervised local workers to keep alive (with "
        "--max-workers > 0 the coordinator spawns and heals its own "
        "worker processes)",
    )
    p_coord.add_argument(
        "--max-workers", type=int, default=0,
        help="autoscale ceiling for supervised workers (0 disables "
        "supervision; default 0)",
    )
    p_coord.add_argument(
        "--specs-per-worker", type=int, default=4,
        help="backlog specs per supervised worker before scaling up "
        "(default 4)",
    )
    p_coord.add_argument(
        "--crash-threshold", type=int, default=5,
        help="worker deaths inside --crash-window before the slot is "
        "declared crash-looped and no longer restarted (default 5)",
    )
    p_coord.add_argument(
        "--crash-window", type=float, default=60.0,
        help="seconds of history the crash-loop detector considers "
        "(default 60)",
    )
    p_coord.add_argument(
        "--worker-cache-dir", default=".repro_cache/workers",
        help="result-cache root for supervised workers (one subdir "
        "per slot)",
    )
    p_coord.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="deterministic fault-injection schedule for this "
        "coordinator, e.g. 'seed=7,kill-pool@3' (the pool process "
        "dies abruptly at its Nth granted lease)",
    )
    add_listener_hardening(p_coord)
    add_warehouse(p_coord)
    p_coord.set_defaults(fn=cmd_coordinator)

    p_fed = sub.add_parser(
        "federate",
        help="run a federation front: shard submitted sweeps across "
        "peer coordinator pools with health probing and failover",
    )
    p_fed.add_argument("--host", default="127.0.0.1")
    p_fed.add_argument(
        "--port", type=int, default=7460,
        help="listen port (0 picks a free one; default 7460)",
    )
    p_fed.add_argument(
        "--pool", action="append", default=[], metavar="HOST:PORT",
        help="a peer coordinator pool to federate over (repeatable; "
        "more can be attached later via 'repro submit --pool')",
    )
    p_fed.add_argument(
        "--journal", default=".repro_cache/federation_journal.jsonl",
        help="append-only JSONL job journal for the front "
        "(default .repro_cache/federation_journal.jsonl)",
    )
    p_fed.add_argument(
        "--no-journal", action="store_true",
        help="run without durability (front crash loses in-flight jobs)",
    )
    p_fed.add_argument(
        "--resume", action="store_true",
        help="replay the front journal on startup and finish half-done "
        "jobs without re-executing specs any pool completed",
    )
    p_fed.add_argument(
        "--compact-every", type=int, default=1000,
        help="compact the front journal every N records (0 disables; "
        "default 1000)",
    )
    p_fed.add_argument(
        "--max-spec-retries", type=int, default=5,
        help="involuntary re-homes before a spec is quarantined as a "
        "structured failure (default 5)",
    )
    p_fed.add_argument(
        "--chunk-specs", type=int, default=4,
        help="specs granted to one pool per forwarding chunk "
        "(default 4)",
    )
    p_fed.add_argument(
        "--probe-interval", type=float, default=2.0,
        help="seconds between health probes per pool (default 2)",
    )
    p_fed.add_argument(
        "--failure-threshold", type=int, default=3,
        help="consecutive probe/stream failures before a pool's "
        "circuit breaker opens (default 3)",
    )
    add_listener_hardening(p_fed)
    add_warehouse(p_fed)
    p_fed.set_defaults(fn=cmd_federate)

    p_worker = sub.add_parser(
        "worker",
        help="run a cluster worker against a coordinator",
    )
    p_worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="the coordinator to register with",
    )
    p_worker.add_argument(
        "--name", default=None,
        help="worker name for logs/journal (default hostname-pid)",
    )
    p_worker.add_argument(
        "--capacity", type=int, default=1,
        help="outstanding leases to prefetch (execution stays serial)",
    )
    p_worker.add_argument(
        "--cache", default=".repro_cache",
        help="this worker's result-cache directory",
    )
    p_worker.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache"
    )
    p_worker.add_argument(
        "--max-cache-entries", type=int, default=None,
        help="LRU-cap the worker's result cache after every batch",
    )
    p_worker.add_argument(
        "--auth-token", default=None,
        help="shared secret for a guarded coordinator "
        "(falls back to REPRO_AUTH_TOKEN)",
    )
    p_worker.add_argument(
        "--retry", type=int, default=25,
        help="connection attempts beyond the first (0.2s apart)",
    )
    p_worker.add_argument(
        "--reconnects", type=int, default=5,
        help="reconnect attempts after losing the coordinator",
    )
    p_worker.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="deterministic fault-injection schedule, e.g. "
        "'seed=42,kill-worker@3,drop-conn@5' (falls back to the "
        "REPRO_CHAOS env var)",
    )
    p_worker.add_argument("--quiet", action="store_true")
    p_worker.set_defaults(fn=cmd_worker)

    p_cache = sub.add_parser(
        "cache",
        help="inspect or prune the on-disk result cache",
    )
    p_cache.add_argument(
        "--dir", default=".repro_cache",
        help="cache directory (default .repro_cache)",
    )
    p_cache.add_argument(
        "--prune", action="store_true",
        help="apply the --max-entries LRU cap (by file mtime)",
    )
    p_cache.add_argument(
        "--max-entries", type=int, default=None,
        help="entries to keep when pruning",
    )
    p_cache.add_argument(
        "--clear", action="store_true",
        help="drop every entry across all code versions",
    )
    p_cache.add_argument(
        "--stats", action="store_true",
        help="print the cache statistics as JSON and exit",
    )
    p_cache.set_defaults(fn=cmd_cache)

    p_submit = sub.add_parser(
        "submit",
        help="submit scenarios to a running service and stream results",
    )
    add_selection(p_submit)
    add_sweep(p_submit)
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=7341)
    p_submit.add_argument(
        "--shards", type=int, default=None,
        help="server-side shard fan-out: run the expansion as N "
        "deterministic batches",
    )
    p_submit.add_argument(
        "--stream", action="store_true", default=True,
        help="stream results as they complete (always on: submit has "
        "no batch mode; the flag exists so scripts can say what they "
        "mean)",
    )
    p_submit.add_argument(
        "--retry", type=int, default=0,
        help="connection attempts beyond the first (0.2s apart), for "
        "racing a freshly started server",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=None,
        help="socket timeout (s); default: wait indefinitely",
    )
    p_submit.add_argument(
        "--shutdown", action="store_true",
        help="send a shutdown to the server after the submission "
        "(or alone, with no selection)",
    )
    p_submit.add_argument(
        "--attach", metavar="JOB", default=None,
        help="re-attach to an existing job id (e.g. after a "
        "coordinator --resume) and stream its merged results",
    )
    p_submit.add_argument(
        "--pool", action="append", default=[], metavar="HOST:PORT",
        help="register a coordinator pool on a federation front "
        "(repeatable; works alone or before a submission)",
    )
    p_submit.add_argument(
        "--auth-token", default=None,
        help="shared secret for a guarded listener "
        "(falls back to REPRO_AUTH_TOKEN)",
    )
    p_submit.add_argument("--out", help="write the streamed report JSON here")
    p_submit.add_argument("--quiet", action="store_true")
    p_submit.set_defaults(fn=cmd_submit)

    p_report = sub.add_parser(
        "report", help="render a saved report JSON"
    )
    p_report.add_argument("path")
    p_report.add_argument(
        "--full", action="store_true",
        help="include every scenario's table, not just the summary",
    )
    p_report.set_defaults(fn=cmd_report)

    p_status = sub.add_parser(
        "status",
        help="print a listener's status frame: jobs, live metrics, "
        "cluster pool state (JSON)",
    )
    p_status.add_argument("--host", default="127.0.0.1")
    p_status.add_argument(
        "--port", type=int, default=7341,
        help="listener port (7341 service, 7452 coordinator default)",
    )
    p_status.add_argument(
        "--job", default=None, help="restrict the jobs block to one job id"
    )
    p_status.add_argument(
        "--watch", action="store_true",
        help="stream status updates until ^C (server-push via the "
        "watch frame; falls back to polling on older servers)",
    )
    p_status.add_argument(
        "--poll", action="store_true",
        help="with --watch: force the classic polling loop instead of "
        "the server-push watch frame",
    )
    p_status.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between --watch updates (default 2)",
    )
    p_status.add_argument(
        "--retry", type=int, default=0,
        help="connection attempts beyond the first (0.2s apart)",
    )
    p_status.add_argument(
        "--timeout", type=float, default=10.0,
        help="socket timeout (s; default 10)",
    )
    p_status.add_argument(
        "--auth-token", default=None,
        help="shared secret for a guarded listener "
        "(falls back to REPRO_AUTH_TOKEN)",
    )
    p_status.set_defaults(fn=cmd_status)

    p_query = sub.add_parser(
        "query",
        help="query the sqlite results warehouse (filters, aggregates, "
        "bench trends)",
    )
    p_query.add_argument(
        "--db", default=None, metavar="PATH",
        help="warehouse path (falls back to REPRO_WAREHOUSE, then "
        f"{DEFAULT_WAREHOUSE})",
    )
    p_query.add_argument("--scenario", default=None,
                         help="filter: scenario name, e.g. E10")
    p_query.add_argument("--status", default=None,
                         help="filter: ok | error | timeout")
    p_query.add_argument("--job", default=None, help="filter: job id")
    p_query.add_argument("--spec-hash", default=None,
                         help="filter: content hash of the spec")
    p_query.add_argument("--source", default=None,
                         help="filter: local | coordinator")
    p_query.add_argument("--code-version", default=None,
                         help="filter: engine code-version digest")
    p_query.add_argument(
        "--cached", choices=("yes", "no"), default=None,
        help="filter: cache replays only (yes) or fresh runs only (no)",
    )
    p_query.add_argument(
        "--since", default=None,
        help="filter: rows recorded at/after this ISO date or epoch",
    )
    p_query.add_argument(
        "--until", default=None,
        help="filter: rows recorded at/before this ISO date or epoch",
    )
    p_query.add_argument(
        "--limit", type=int, default=None, help="cap on returned rows"
    )
    p_query.add_argument(
        "--agg", action="append", metavar="FN:FIELD",
        help="grouped aggregate instead of rows, e.g. mean:wall_time "
        "count: max:headline_value (repeatable)",
    )
    p_query.add_argument(
        "--group-by", default="scenario",
        help="grouping column for --agg (default scenario)",
    )
    p_query.add_argument(
        "--count", action="store_true",
        help="print just the matching row count",
    )
    p_query.add_argument(
        "--stats", action="store_true",
        help="print warehouse-wide statistics as JSON",
    )
    p_query.add_argument(
        "--bench-trend", action="store_true",
        help="read the ingested bench history instead of results "
        "(honors --scenario/--limit)",
    )
    p_query.add_argument(
        "--ingest-trajectory", metavar="PATH", default=None,
        help="load a BENCH_TRAJECTORY.json into the bench history "
        "(idempotent) and exit",
    )
    p_query.add_argument(
        "--format", choices=("table", "json"), default="table"
    )
    p_query.add_argument(
        "--retain-days", type=float, default=None, metavar="DAYS",
        help="delete rows older than DAYS (compaction; prints a "
        "summary and exits)",
    )
    p_query.add_argument(
        "--retain-rows", type=int, default=None, metavar="N",
        help="keep only the newest N result rows (combinable with "
        "--retain-days)",
    )
    p_query.add_argument(
        "--no-vacuum", action="store_true",
        help="skip the VACUUM after --retain-days/--retain-rows",
    )
    p_query.add_argument(
        "--serve", action="store_true",
        help="serve the warehouse read-only over HTTP/JSON until ^C "
        "(see docs/observability.md)",
    )
    p_query.add_argument(
        "--http-host", default="127.0.0.1",
        help="bind address for --serve (default 127.0.0.1)",
    )
    p_query.add_argument(
        "--http-port", type=int, default=DEFAULT_HTTP_PORT,
        help=f"port for --serve (default {DEFAULT_HTTP_PORT})",
    )
    p_query.set_defaults(fn=cmd_query)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.telemetry.events import configure_from_env

    configure_from_env()  # REPRO_EVENTS=path.jsonl traces every event
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `repro list | head`
        return 0
    except (KeyError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
