"""``python -m repro`` — run, list and report scenarios.

Examples::

    python -m repro list
    python -m repro list --tags ablation,noc
    python -m repro run --tags smoke --workers 2
    python -m repro run --names E10 E14 --workers 4 --cache .repro_cache
    python -m repro run --tags experiments --out report.json
    python -m repro report report.json --full
    python -m repro bench --tags perf --threshold 0.25
    python -m repro bench --profile --tags perf
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.engine import registry
from repro.engine.cache import ResultCache
from repro.engine.executor import execute
from repro.engine.results import Report, ScenarioResult


def _split_tags(value: Optional[str]) -> Optional[List[str]]:
    if not value:
        return None
    return [t.strip() for t in value.split(",") if t.strip()]


def _selected(args) -> list:
    tags = _split_tags(args.tags)
    names = args.names or None
    return registry.select(tags=tags, names=names)


def cmd_list(args) -> int:
    from repro.analysis.report import format_table

    entries = _selected(args)
    if args.format == "json":
        print(
            json.dumps(
                [e.spec.to_dict() | {"doc": e.doc} for e in entries],
                indent=1,
            )
        )
        return 0
    rows = [
        {
            "scenario": e.name,
            "tags": ",".join(sorted(e.spec.tags)),
            "module": e.module.replace("repro.", ""),
            "doc": e.doc[:60],
        }
        for e in entries
    ]
    print(format_table(rows) if rows else "(no scenarios match)")
    print(f"\n{len(rows)} scenarios; tags: "
          + ", ".join(f"{t}({n})" for t, n in registry.all_tags().items()))
    return 0


def cmd_run(args) -> int:
    entries = _selected(args)
    if not entries:
        print("no scenarios selected", file=sys.stderr)
        return 2
    specs = [e.spec for e in entries]
    cache = None if args.no_cache else ResultCache(args.cache)

    def progress(result: ScenarioResult) -> None:
        if args.quiet:
            return
        origin = "cached" if result.cached else result.backend
        print(
            f"  {result.name:<14} {result.status:<7} "
            f"[{origin}] {result.elapsed_s:.2f}s",
            flush=True,
        )

    report = execute(
        specs,
        workers=args.workers,
        timeout_s=args.timeout,
        backend=args.backend,
        cache=cache,
        progress=progress,
    )
    if not args.quiet:
        print()
    print(report.render())
    if args.out:
        path = report.save(args.out)
        print(f"\nwrote {path}")
    return 1 if report.failed else 0


def cmd_bench(args) -> int:
    from repro.engine.perf import run_bench, run_profile

    if args.profile:
        return run_profile(
            tags=_split_tags(args.tags),
            names=args.names or None,
            out=args.profile_out,
            quiet=args.quiet,
        )
    return run_bench(
        tags=_split_tags(args.tags),
        names=args.names or None,
        workers=args.workers,
        timeout_s=args.timeout,
        out=args.out,
        trajectory=None if args.no_trajectory else args.trajectory,
        baseline="" if args.no_compare else args.baseline,
        threshold=args.threshold,
        cache_dir=args.cache,
        quiet=args.quiet,
    )


def cmd_report(args) -> int:
    from repro.analysis.report import format_table, render_experiment

    report = Report.load(args.path)
    print(report.render())
    if args.full:
        for result in report:
            print()
            print(
                render_experiment(
                    result.name,
                    {
                        "claim": result.claim,
                        "rows": result.rows,
                        "verdict": result.verdict,
                    },
                )
            )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Scenario engine for the DAC'03 SoC reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_selection(p):
        p.add_argument(
            "--tags",
            help="comma-separated tag filter (any-match), e.g. "
            "'ablation,noc'",
        )
        p.add_argument(
            "--names", nargs="*", help="explicit scenario names, e.g. E1 A3"
        )

    p_list = sub.add_parser("list", help="list registered scenarios")
    add_selection(p_list)
    p_list.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    p_list.set_defaults(fn=cmd_list)

    p_run = sub.add_parser("run", help="execute selected scenarios")
    add_selection(p_run)
    p_run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (>1 enables the process backend)",
    )
    p_run.add_argument(
        "--backend", choices=("auto", "serial", "process"), default="auto"
    )
    p_run.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout (s)"
    )
    p_run.add_argument(
        "--cache", default=".repro_cache",
        help="result-cache directory (default .repro_cache)",
    )
    p_run.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache"
    )
    p_run.add_argument("--out", help="write the aggregated report JSON here")
    p_run.add_argument("--quiet", action="store_true")
    p_run.set_defaults(fn=cmd_run)

    p_bench = sub.add_parser(
        "bench",
        help="run benchmarks, append the perf trajectory, gate regressions",
    )
    add_selection(p_bench)
    p_bench.add_argument("--workers", type=int, default=4)
    p_bench.add_argument(
        "--timeout", type=float, default=300.0, help="per-job timeout (s)"
    )
    p_bench.add_argument(
        "--out", default="BENCH_RESULTS.json",
        help="bench results payload (default BENCH_RESULTS.json)",
    )
    p_bench.add_argument(
        "--trajectory", default="BENCH_TRAJECTORY.json",
        help="append-only perf trajectory log",
    )
    p_bench.add_argument(
        "--no-trajectory", action="store_true",
        help="skip the trajectory append",
    )
    p_bench.add_argument(
        "--baseline", default=None,
        help="baseline payload to gate against (default: --out before "
        "this run, i.e. the committed results)",
    )
    p_bench.add_argument(
        "--no-compare", action="store_true", help="skip the regression gate"
    )
    p_bench.add_argument(
        "--threshold", type=float, default=0.25,
        help="allowed wall-time growth before the gate fails (default 0.25)",
    )
    p_bench.add_argument(
        "--cache", default=None,
        help="optional result-cache dir (benchmarks default to uncached "
        "so wall times are real)",
    )
    p_bench.add_argument(
        "--profile", action="store_true",
        help="cProfile each scenario serially and write the top-20 "
        "cumulative functions per scenario (skips the trajectory and "
        "the regression gate: instrumented times are not comparable)",
    )
    p_bench.add_argument(
        "--profile-out", default="BENCH_PROFILE.json",
        help="profile payload path (default BENCH_PROFILE.json)",
    )
    p_bench.add_argument("--quiet", action="store_true")
    p_bench.set_defaults(fn=cmd_bench)

    p_report = sub.add_parser(
        "report", help="render a saved report JSON"
    )
    p_report.add_argument("path")
    p_report.add_argument(
        "--full", action="store_true",
        help="include every scenario's table, not just the summary",
    )
    p_report.set_defaults(fn=cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:  # e.g. `repro list | head`
        return 0
    except (KeyError, OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
