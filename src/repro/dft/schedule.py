"""SoC-level test scheduling.

Cores share the test access mechanism and a power envelope; the
scheduler packs per-core tests into parallel sessions to minimize total
test time — the SoC-complexity DFT problem Section 4 says must evolve
with platform scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dft.wrapper import CoreTestSpec, Ieee1500Wrapper


@dataclass
class ScheduledTest:
    """One core's test occurrence in the schedule."""

    core: str
    start_cycle: float
    end_cycle: float
    tam_width: int
    power_mw: float


@dataclass
class SocTestSchedule:
    """A complete SoC test schedule."""

    entries: List[ScheduledTest] = field(default_factory=list)
    tam_width: int = 0
    power_budget_mw: float = 0.0

    @property
    def total_cycles(self) -> float:
        return max((e.end_cycle for e in self.entries), default=0.0)

    def parallelism_at(self, cycle: float) -> int:
        """Concurrent tests running at a time point."""
        return sum(
            1 for e in self.entries if e.start_cycle <= cycle < e.end_cycle
        )

    def power_at(self, cycle: float) -> float:
        return sum(
            e.power_mw
            for e in self.entries
            if e.start_cycle <= cycle < e.end_cycle
        )

    def validate(self) -> None:
        """Check TAM and power constraints at every event boundary."""
        events = sorted(
            {e.start_cycle for e in self.entries}
            | {e.end_cycle for e in self.entries}
        )
        for t in events:
            width = sum(
                e.tam_width
                for e in self.entries
                if e.start_cycle <= t < e.end_cycle
            )
            if width > self.tam_width:
                raise ValueError(
                    f"TAM overcommitted at cycle {t}: {width} > {self.tam_width}"
                )
            power = self.power_at(t)
            if self.power_budget_mw and power > self.power_budget_mw + 1e-9:
                raise ValueError(
                    f"power budget exceeded at cycle {t}: "
                    f"{power} > {self.power_budget_mw} mW"
                )


def schedule_tests(
    specs: List[CoreTestSpec],
    tam_width: int = 16,
    power_budget_mw: float = 0.0,
    width_per_core: Optional[int] = None,
) -> SocTestSchedule:
    """Greedy rectangle packing of core tests.

    Each core gets ``width_per_core`` TAM wires (default: a quarter of
    the TAM, at least 1); cores are sorted longest-first and placed at
    the earliest time where both TAM wires and power headroom exist.
    """
    if tam_width < 1:
        raise ValueError(f"TAM width must be >=1, got {tam_width}")
    per_core = width_per_core or max(1, tam_width // 4)
    per_core = min(per_core, tam_width)
    jobs: List[Tuple[float, CoreTestSpec]] = []
    for spec in specs:
        cycles = Ieee1500Wrapper(spec, per_core).test_cycles()
        jobs.append((float(cycles), spec))
    jobs.sort(key=lambda pair: -pair[0])
    schedule = SocTestSchedule(tam_width=tam_width, power_budget_mw=power_budget_mw)
    for duration, spec in jobs:
        start = 0.0
        while True:
            # Candidate interval [start, start+duration): feasible?
            boundaries = sorted(
                {start}
                | {
                    e.start_cycle
                    for e in schedule.entries
                    if start <= e.start_cycle < start + duration
                }
                | {
                    e.end_cycle
                    for e in schedule.entries
                    if start < e.end_cycle <= start + duration
                }
            )
            conflict_at = None
            for t in boundaries:
                width = sum(
                    e.tam_width
                    for e in schedule.entries
                    if e.start_cycle <= t < e.end_cycle
                )
                power = schedule.power_at(t)
                if width + per_core > tam_width or (
                    power_budget_mw
                    and power + spec.test_power_mw > power_budget_mw
                ):
                    conflict_at = t
                    break
            if conflict_at is None:
                break
            # Jump past the earliest finishing blocker after the conflict.
            ends = [
                e.end_cycle
                for e in schedule.entries
                if e.end_cycle > conflict_at
            ]
            start = min(ends)
        schedule.entries.append(
            ScheduledTest(
                core=spec.name,
                start_cycle=start,
                end_cycle=start + duration,
                tam_width=per_core,
                power_mw=spec.test_power_mw,
            )
        )
    schedule.validate()
    return schedule


def serial_test_cycles(specs: List[CoreTestSpec], tam_width: int = 16) -> float:
    """Baseline: test every core one after another on the full TAM."""
    return float(
        sum(Ieee1500Wrapper(spec, tam_width).test_cycles() for spec in specs)
    )
