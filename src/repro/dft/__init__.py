"""Design-for-test infrastructure.

Section 4 of the paper: "DFT has to evolve together with SoC complexity.
The IEEE 1500 class of on-chip test bus is an example of this trend.
In addition, BIST will need to support all sorts of IP's: not only
memories, but also digital logic, analog and RF."

* :mod:`repro.dft.wrapper` — IEEE 1500-style core test wrappers and the
  test access mechanism (TAM) arithmetic;
* :mod:`repro.dft.schedule` — SoC-level test scheduling under TAM-width
  and power constraints;
* :mod:`repro.dft.bist` — memory BIST (March algorithms) and logic BIST
  coverage models.
"""

from repro.dft.wrapper import CoreTestSpec, Ieee1500Wrapper, WrapperMode
from repro.dft.schedule import SocTestSchedule, schedule_tests
from repro.dft.bist import (
    MARCH_ALGORITHMS,
    MarchAlgorithm,
    logic_bist_coverage,
    memory_bist_cycles,
    patterns_for_coverage,
)

__all__ = [
    "CoreTestSpec",
    "Ieee1500Wrapper",
    "MARCH_ALGORITHMS",
    "MarchAlgorithm",
    "SocTestSchedule",
    "WrapperMode",
    "logic_bist_coverage",
    "memory_bist_cycles",
    "patterns_for_coverage",
    "schedule_tests",
]
