"""Built-in self test models.

Section 4: "BIST will need to support all sorts of IP's: not only
memories, but also digital logic, analog and RF."  Provided here:
memory BIST via the classic March algorithms (exact operation counts)
and a logic-BIST fault-coverage model (exponential coverage in random
patterns, the standard single-stuck-at approximation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class MarchAlgorithm:
    """A March memory-test algorithm.

    ``operations_per_cell`` is the March complexity (e.g. March C- is
    10N); ``detects`` lists the fault classes covered.
    """

    name: str
    operations_per_cell: int
    detects: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.operations_per_cell < 1:
            raise ValueError(f"{self.name}: complexity must be >=1")


MARCH_ALGORITHMS: dict[str, MarchAlgorithm] = {
    a.name: a
    for a in [
        MarchAlgorithm("mats+", 5, ("stuck-at", "address-decoder")),
        MarchAlgorithm(
            "march_c-",
            10,
            ("stuck-at", "address-decoder", "transition", "coupling"),
        ),
        MarchAlgorithm(
            "march_lr",
            14,
            (
                "stuck-at",
                "address-decoder",
                "transition",
                "coupling",
                "linked",
            ),
        ),
    ]
}


def memory_bist_cycles(
    capacity_bits: int,
    word_bits: int = 32,
    algorithm: str = "march_c-",
) -> int:
    """BIST cycles to test a memory with a March algorithm.

    One operation per word per March element; the BIST engine applies
    one operation per cycle.
    """
    if capacity_bits < 1:
        raise ValueError(f"capacity must be positive, got {capacity_bits}")
    if word_bits < 1:
        raise ValueError(f"word width must be positive, got {word_bits}")
    if algorithm not in MARCH_ALGORITHMS:
        raise KeyError(
            f"unknown March algorithm {algorithm!r}; known: "
            f"{', '.join(MARCH_ALGORITHMS)}"
        )
    words = math.ceil(capacity_bits / word_bits)
    return words * MARCH_ALGORITHMS[algorithm].operations_per_cell


def memory_bist_time_ms(
    capacity_mb: float,
    clock_mhz: float = 100.0,
    algorithm: str = "march_c-",
) -> float:
    """Wall-clock memory BIST time."""
    bits = int(capacity_mb * 8 * 1024 * 1024)
    cycles = memory_bist_cycles(bits, algorithm=algorithm)
    return cycles / (clock_mhz * 1e3)


def logic_bist_coverage(
    patterns: int,
    random_resistance: float = 0.002,
    ceiling: float = 0.99,
) -> float:
    """Single-stuck-at coverage of pseudo-random logic BIST.

    Coverage approaches *ceiling* exponentially with applied patterns;
    *random_resistance* sets how slowly hard faults yield (higher =
    more random-pattern-resistant logic).
    """
    if patterns < 0:
        raise ValueError(f"negative pattern count {patterns}")
    if not 0.0 < ceiling <= 1.0:
        raise ValueError(f"ceiling must be in (0,1], got {ceiling}")
    if random_resistance <= 0:
        raise ValueError("random resistance must be positive")
    return ceiling * (1.0 - math.exp(-random_resistance * patterns))


def patterns_for_coverage(
    target: float,
    random_resistance: float = 0.002,
    ceiling: float = 0.99,
) -> int:
    """Patterns needed to reach *target* coverage (inverse of above)."""
    if not 0.0 < target < ceiling:
        raise ValueError(
            f"target must be in (0, ceiling={ceiling}), got {target}"
        )
    return math.ceil(-math.log(1.0 - target / ceiling) / random_resistance)
