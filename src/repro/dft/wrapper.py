"""IEEE 1500-style core test wrappers.

Every wrapped core gets boundary wrapper cells on its functional
terminals, a wrapper instruction register, and a connection to the
SoC test access mechanism (TAM).  The key quantity for SoC test
economics is the per-core test time as a function of TAM width:

    cycles = patterns * (scan_in + capture + scan_out amortized)

with scan length set by how the core's internal scan chains are
balanced over the wrapper's TAM wires.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import List


class WrapperMode(Enum):
    """IEEE 1500 wrapper operating modes."""

    FUNCTIONAL = "functional"        # wrapper transparent
    INWARD_FACING = "inward"         # test the core
    OUTWARD_FACING = "outward"       # test the interconnect around it
    BYPASS = "bypass"                # 1-bit serial bypass


@dataclass(frozen=True)
class CoreTestSpec:
    """Testability figures of one wrapped core.

    Attributes
    ----------
    name:
        Core name.
    inputs / outputs:
        Functional terminal counts (become wrapper cells).
    scan_flops:
        Internal scan flip-flops.
    internal_chains:
        Number of internal scan chains the core exposes.
    patterns:
        Test patterns to apply.
    test_power_mw:
        Average power while testing (for power-constrained scheduling).
    """

    name: str
    inputs: int
    outputs: int
    scan_flops: int
    internal_chains: int
    patterns: int
    test_power_mw: float = 50.0

    def __post_init__(self) -> None:
        if min(self.inputs, self.outputs, self.scan_flops) < 0:
            raise ValueError(f"{self.name}: negative port/flop counts")
        if self.internal_chains < 1:
            raise ValueError(f"{self.name}: needs >=1 scan chain")
        if self.patterns < 1:
            raise ValueError(f"{self.name}: needs >=1 pattern")


class Ieee1500Wrapper:
    """A wrapped core attached to a TAM of a given width."""

    def __init__(self, spec: CoreTestSpec, tam_width: int = 1) -> None:
        if tam_width < 1:
            raise ValueError(f"TAM width must be >=1, got {tam_width}")
        self.spec = spec
        self.tam_width = tam_width
        self.mode = WrapperMode.FUNCTIONAL

    def set_mode(self, mode: WrapperMode) -> None:
        self.mode = mode

    @property
    def wrapper_cells(self) -> int:
        """Boundary cells added by wrapping."""
        return self.spec.inputs + self.spec.outputs

    @property
    def effective_width(self) -> int:
        """TAM wires the core can actually exploit.

        Internal flops are pre-stitched into ``internal_chains`` chains,
        so wires beyond that count idle — the physical reason wide TAMs
        are shared across cores rather than handed whole to one core.
        """
        return min(self.tam_width, self.spec.internal_chains)

    def scan_chain_length(self) -> int:
        """Longest wrapper-chain after balancing over the usable wires.

        Wrapper input cells + internal flops + wrapper output cells are
        distributed across :attr:`effective_width` chains; the slowest
        chain dominates.
        """
        total_bits = self.wrapper_cells + self.spec.scan_flops
        return math.ceil(total_bits / self.effective_width)

    def test_cycles(self) -> int:
        """Total scan-test cycles for the core.

        Classic scan arithmetic: pipelined scan-in/scan-out overlap, one
        capture cycle per pattern, plus a final scan-out flush.
        """
        length = self.scan_chain_length()
        p = self.spec.patterns
        return (p + 1) * length + p

    def bypass_cycles(self) -> int:
        """Cycles for test data to transit this core in bypass mode."""
        return 1

    def test_time_ms(self, test_clock_mhz: float = 50.0) -> float:
        """Wall-clock test time at a test clock."""
        if test_clock_mhz <= 0:
            raise ValueError(f"test clock must be positive, got {test_clock_mhz}")
        return self.test_cycles() / (test_clock_mhz * 1e3)


def balance_tam(specs: List[CoreTestSpec], total_width: int) -> dict[str, int]:
    """Split a TAM of *total_width* wires over cores to minimize the
    longest individual test.

    Greedy water-filling: start everyone at one wire, repeatedly give
    one more wire to the core whose test is currently longest.
    """
    if total_width < len(specs):
        raise ValueError(
            f"TAM width {total_width} cannot give each of the "
            f"{len(specs)} cores a wire"
        )
    widths = {spec.name: 1 for spec in specs}
    by_name = {spec.name: spec for spec in specs}
    spare = total_width - len(specs)
    for _ in range(spare):
        longest = max(
            widths,
            key=lambda name: Ieee1500Wrapper(
                by_name[name], widths[name]
            ).test_cycles(),
        )
        widths[longest] += 1
    return widths
