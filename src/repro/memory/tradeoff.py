"""The embedded-memory architecture tradeoff explorer (experiment E17).

Enumerates candidate hierarchies (all-eSRAM, eSRAM+eDRAM,
eSRAM+external, eSRAM+eDRAM+external, ...) for a working-set sweep and
scores latency, power, area and cost.  The expected shape: small
working sets favour pure on-chip SRAM; large ones force external DRAM;
eDRAM wins a middle band by packing the working set on-die at a third
of the SRAM area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.memory.hierarchy import AccessProfile, MemoryHierarchy, MemoryLevel
from repro.memory.technology import EDRAM, ESRAM, EXTERNAL_DRAM


@dataclass(frozen=True)
class TradeoffPoint:
    """One (architecture, working set) evaluation."""

    architecture: str
    working_set_mb: float
    avg_latency_cycles: float
    total_power_mw: float
    on_chip_area_mm2: float
    memory_cost_usd: float

    def score(
        self,
        latency_weight: float = 1.0,
        power_weight: float = 1.0,
        area_weight: float = 1.0,
        cost_weight: float = 1.0,
    ) -> float:
        """Weighted geometric cost (lower is better)."""
        return (
            self.avg_latency_cycles ** latency_weight
            * self.total_power_mw ** power_weight
            * (1.0 + self.on_chip_area_mm2) ** area_weight
            * (1.0 + self.memory_cost_usd) ** cost_weight
        )


def _candidate_architectures(
    working_set_mb: float,
) -> Dict[str, MemoryHierarchy]:
    """Standard candidate hierarchies sized for a working set."""
    ws = working_set_mb
    scratch = max(0.0625, min(1.0, ws / 8.0))  # 64 KB .. 1 MB scratchpad
    candidates: Dict[str, MemoryHierarchy] = {
        "all_esram": MemoryHierarchy([MemoryLevel(ESRAM, max(ws, scratch))]),
        "esram_edram": MemoryHierarchy(
            [MemoryLevel(ESRAM, scratch), MemoryLevel(EDRAM, max(ws, 1.0))]
        ),
        "esram_external": MemoryHierarchy(
            [MemoryLevel(ESRAM, scratch), MemoryLevel(EXTERNAL_DRAM, max(ws, 8.0))]
        ),
        "esram_edram_external": MemoryHierarchy(
            [
                MemoryLevel(ESRAM, scratch),
                MemoryLevel(EDRAM, max(1.0, min(ws, 8.0))),
                MemoryLevel(EXTERNAL_DRAM, max(ws, 8.0)),
            ]
        ),
    }
    return candidates


def architecture_tradeoff(
    working_set_mb: float,
    profile_factory: Callable[[float], AccessProfile] | None = None,
    clock_ghz: float = 0.5,
) -> List[TradeoffPoint]:
    """Evaluate every candidate architecture at one working set."""
    if profile_factory is None:
        profile_factory = lambda ws: AccessProfile(working_set_mb=ws)
    profile = profile_factory(working_set_mb)
    points = []
    for name, hierarchy in _candidate_architectures(working_set_mb).items():
        points.append(
            TradeoffPoint(
                architecture=name,
                working_set_mb=working_set_mb,
                avg_latency_cycles=hierarchy.average_latency_cycles(profile),
                total_power_mw=hierarchy.total_power_mw(profile, clock_ghz),
                on_chip_area_mm2=hierarchy.on_chip_area_mm2(),
                memory_cost_usd=hierarchy.memory_cost_usd(),
            )
        )
    return points


def best_architecture(
    working_set_mb: float,
    latency_weight: float = 1.0,
    power_weight: float = 1.0,
    area_weight: float = 1.0,
    cost_weight: float = 1.0,
) -> TradeoffPoint:
    """Lowest-score architecture at one working set."""
    points = architecture_tradeoff(working_set_mb)
    return min(
        points,
        key=lambda p: p.score(
            latency_weight, power_weight, area_weight, cost_weight
        ),
    )


def tradeoff_sweep(
    working_sets_mb: List[float] | None = None,
) -> List[TradeoffPoint]:
    """The E17 sweep: winner at each working-set size."""
    if working_sets_mb is None:
        working_sets_mb = [0.0625, 0.25, 1.0, 4.0, 16.0, 64.0]
    return [best_architecture(ws) for ws in working_sets_mb]
