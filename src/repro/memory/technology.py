"""Memory technology descriptors.

Era-typical (130/90 nm) figures for the four options the paper weighs:
embedded SRAM (fast, power-hungry, 6T-large), embedded DRAM (denser,
slower, refresh), embedded Flash (non-volatile, slow writes — the
paper's Section 8 cites an application-specific eFlash subsystem for
code, data and eFPGA bitstreams), and external DRAM (cheapest per bit,
but paying the off-chip pin crossing in latency, power and I/O).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemoryTechnology:
    """Cost/performance figures for one memory option.

    Attributes
    ----------
    name:
        Technology label.
    area_mm2_per_mb:
        Silicon area per megabyte (on-chip options; for external memory
        this is the *on-chip controller+PHY* area amortized per MB).
    read_latency_cycles / write_latency_cycles:
        Access latency in SoC clock cycles at a 500 MHz reference.
    energy_pj_per_byte_read / energy_pj_per_byte_write:
        Access energy.
    static_mw_per_mb:
        Standby power (refresh for DRAM, leakage for SRAM).
    cost_usd_per_mb:
        Incremental manufacturing cost per MB.
    non_volatile:
        Retains contents without power.
    on_chip:
        Lives on the SoC die.
    endurance_writes:
        Write-cycle endurance (inf for RAM).
    """

    name: str
    area_mm2_per_mb: float
    read_latency_cycles: float
    write_latency_cycles: float
    energy_pj_per_byte_read: float
    energy_pj_per_byte_write: float
    static_mw_per_mb: float
    cost_usd_per_mb: float
    non_volatile: bool
    on_chip: bool
    endurance_writes: float = float("inf")

    def access_latency(self, write: bool = False) -> float:
        return self.write_latency_cycles if write else self.read_latency_cycles

    def access_energy_pj(self, bytes_accessed: int, write: bool = False) -> float:
        if bytes_accessed < 0:
            raise ValueError(f"negative access size {bytes_accessed}")
        per_byte = (
            self.energy_pj_per_byte_write if write else self.energy_pj_per_byte_read
        )
        return per_byte * bytes_accessed


ESRAM = MemoryTechnology(
    name="esram",
    area_mm2_per_mb=3.0,
    read_latency_cycles=2.0,
    write_latency_cycles=2.0,
    energy_pj_per_byte_read=2.0,
    energy_pj_per_byte_write=2.2,
    static_mw_per_mb=6.0,
    cost_usd_per_mb=1.20,
    non_volatile=False,
    on_chip=True,
)

EDRAM = MemoryTechnology(
    name="edram",
    area_mm2_per_mb=1.0,
    read_latency_cycles=8.0,
    write_latency_cycles=8.0,
    energy_pj_per_byte_read=4.0,
    energy_pj_per_byte_write=4.5,
    static_mw_per_mb=2.5,     # dominated by refresh
    cost_usd_per_mb=0.55,     # denser, but extra process steps
    non_volatile=False,
    on_chip=True,
)

EFLASH = MemoryTechnology(
    name="eflash",
    area_mm2_per_mb=1.6,
    read_latency_cycles=6.0,
    write_latency_cycles=5000.0,   # program/erase is millisecond-class
    energy_pj_per_byte_read=3.0,
    energy_pj_per_byte_write=300.0,
    static_mw_per_mb=0.01,
    cost_usd_per_mb=0.90,
    non_volatile=True,
    on_chip=True,
    endurance_writes=100_000.0,
)

EXTERNAL_DRAM = MemoryTechnology(
    name="external_dram",
    area_mm2_per_mb=0.05,          # controller + PHY amortized
    read_latency_cycles=60.0,      # pin crossing + DRAM core
    write_latency_cycles=60.0,
    energy_pj_per_byte_read=40.0,  # I/O drivers dominate
    energy_pj_per_byte_write=42.0,
    static_mw_per_mb=0.8,
    cost_usd_per_mb=0.08,          # commodity pricing
    non_volatile=False,
    on_chip=False,
)

MEMORY_TECHNOLOGIES: dict[str, MemoryTechnology] = {
    t.name: t for t in (ESRAM, EDRAM, EFLASH, EXTERNAL_DRAM)
}
