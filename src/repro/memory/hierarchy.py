"""Memory hierarchy composition and evaluation.

A :class:`MemoryHierarchy` stacks levels (e.g. eSRAM scratchpad over
eDRAM over external DRAM); given a working set and access profile it
computes average access latency/energy, die area and cost — the figures
the platform-level "embedded memory architecture tradeoff" weighs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.memory.technology import MemoryTechnology


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the hierarchy: a technology and its capacity."""

    technology: MemoryTechnology
    capacity_mb: float

    def __post_init__(self) -> None:
        if self.capacity_mb <= 0:
            raise ValueError(
                f"{self.technology.name}: capacity must be positive, "
                f"got {self.capacity_mb}"
            )


@dataclass
class AccessProfile:
    """Workload memory behaviour.

    Attributes
    ----------
    working_set_mb:
        Hot data footprint.
    accesses_per_cycle:
        Memory references issued per SoC cycle.
    bytes_per_access:
        Transfer granularity.
    write_fraction:
        Share of references that are writes.
    locality:
        0-1: probability an access hits the smallest level that fits its
        locality slice; higher = more cache-friendly.
    """

    working_set_mb: float
    accesses_per_cycle: float = 0.3
    bytes_per_access: int = 8
    write_fraction: float = 0.3
    locality: float = 0.8

    def __post_init__(self) -> None:
        if self.working_set_mb <= 0:
            raise ValueError("working set must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write fraction must be in [0,1]")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError("locality must be in [0,1]")


@dataclass
class MemoryHierarchy:
    """Ordered levels, fastest/smallest first."""

    levels: List[MemoryLevel]

    def __post_init__(self) -> None:
        if not self.levels:
            raise ValueError("hierarchy needs at least one level")

    @property
    def total_capacity_mb(self) -> float:
        return sum(level.capacity_mb for level in self.levels)

    def on_chip_area_mm2(self) -> float:
        """Die area of the on-chip levels (plus controllers for external)."""
        return sum(
            level.technology.area_mm2_per_mb * level.capacity_mb
            for level in self.levels
        )

    def memory_cost_usd(self) -> float:
        return sum(
            level.technology.cost_usd_per_mb * level.capacity_mb
            for level in self.levels
        )

    def static_power_mw(self) -> float:
        return sum(
            level.technology.static_mw_per_mb * level.capacity_mb
            for level in self.levels
        )

    def hit_distribution(self, profile: AccessProfile) -> List[float]:
        """Fraction of accesses served by each level.

        A geometric locality model: the first level captures
        ``locality * min(1, capacity/working_set)`` of references, the
        remainder cascades down; the last level is the backstop and
        must fit the working set.
        """
        remaining = 1.0
        fractions: List[float] = []
        for index, level in enumerate(self.levels):
            is_last = index == len(self.levels) - 1
            if is_last:
                fractions.append(remaining)
                remaining = 0.0
                break
            coverage = min(1.0, level.capacity_mb / profile.working_set_mb)
            hit = remaining * profile.locality * coverage
            fractions.append(hit)
            remaining -= hit
        if remaining > 1e-12:  # pragma: no cover - loop invariant
            raise RuntimeError("hit distribution does not sum to 1")
        return fractions

    def average_latency_cycles(self, profile: AccessProfile) -> float:
        """Expected access latency under the profile."""
        self._check_backstop(profile)
        fractions = self.hit_distribution(profile)
        total = 0.0
        for level, fraction in zip(self.levels, fractions):
            latency = (
                profile.write_fraction * level.technology.access_latency(write=True)
                + (1.0 - profile.write_fraction)
                * level.technology.access_latency(write=False)
            )
            total += fraction * latency
        return total

    def dynamic_power_mw(self, profile: AccessProfile, clock_ghz: float = 0.5) -> float:
        """Access power under the profile at a clock frequency."""
        self._check_backstop(profile)
        fractions = self.hit_distribution(profile)
        accesses_per_s = profile.accesses_per_cycle * clock_ghz * 1e9
        total_w = 0.0
        for level, fraction in zip(self.levels, fractions):
            energy_pj = profile.write_fraction * level.technology.access_energy_pj(
                profile.bytes_per_access, write=True
            ) + (1.0 - profile.write_fraction) * level.technology.access_energy_pj(
                profile.bytes_per_access, write=False
            )
            total_w += fraction * accesses_per_s * energy_pj * 1e-12
        return total_w * 1000.0

    def total_power_mw(self, profile: AccessProfile, clock_ghz: float = 0.5) -> float:
        return self.static_power_mw() + self.dynamic_power_mw(profile, clock_ghz)

    def _check_backstop(self, profile: AccessProfile) -> None:
        backstop = self.levels[-1]
        if backstop.capacity_mb < profile.working_set_mb:
            raise ValueError(
                f"backstop level {backstop.technology.name!r} "
                f"({backstop.capacity_mb} MB) cannot hold the "
                f"{profile.working_set_mb} MB working set"
            )
