"""Embedded memory architecture models.

Section 3 of the paper names "embedded memory architecture tradeoffs
(embedded SRAM, eDRAM and eFlash, v.s. external memories)" as one of
the two main design issues at the platform level.  This package models
the four memory technologies and explores the tradeoff (experiment
E17).
"""

from repro.memory.technology import (
    EDRAM,
    EFLASH,
    ESRAM,
    EXTERNAL_DRAM,
    MEMORY_TECHNOLOGIES,
    MemoryTechnology,
)
from repro.memory.hierarchy import MemoryHierarchy, MemoryLevel
from repro.memory.tradeoff import (
    TradeoffPoint,
    architecture_tradeoff,
    best_architecture,
)

__all__ = [
    "EDRAM",
    "EFLASH",
    "ESRAM",
    "EXTERNAL_DRAM",
    "MEMORY_TECHNOLOGIES",
    "MemoryHierarchy",
    "MemoryLevel",
    "MemoryTechnology",
    "TradeoffPoint",
    "architecture_tradeoff",
    "best_architecture",
]
