"""Reconfigurable processor: RISC core + eFPGA instruction extensions.

Section 8 of the paper: "The development and manufacturing of a 1 GOPS
reconfigurable signal processing IC.  This combines a commercial
configurable RISC core with an embedded FPGA fabric which implements
the application-specific instruction extensions."  And Section 6.2:
"Reconfigurable processors take this one step further, by allowing
run-time changes to the architecture."

This module implements that machine executably: a
:class:`ReconfigurableCpu` wraps the :mod:`repro.processors.risc` ISS
with custom instructions (``xop0`` .. ``xop7``) whose datapaths are
configured onto an :class:`~repro.processors.efpga.EfpgaFabric` at run
time.  Each extension collapses a multi-instruction pattern into one
(multi-cycle) instruction, and can be swapped for another mid-program —
the run-time architecture change the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.processors.efpga import EfpgaFabric
from repro.processors.risc import (
    Assembler,
    CYCLE_COSTS,
    Instruction,
    MASK32,
    RiscCpu,
    RiscError,
)

#: Number of custom-instruction opcode slots.
XOP_SLOTS = 8


@dataclass(frozen=True)
class CustomInstruction:
    """One eFPGA-implemented instruction extension.

    Attributes
    ----------
    name:
        Human-readable name (e.g. ``"mac16"``).
    semantics:
        ``f(a, b) -> result`` over 32-bit unsigned operands.
    replaces_instructions:
        Base-ISA instructions the pattern replaces (speedup accounting).
    gates:
        Hardwired-equivalent gate count configured onto the fabric.
    cycles:
        Execution cycles of the fabric datapath (eFPGA runs slower than
        core logic, so complex extensions take >1 cycle).
    """

    name: str
    semantics: Callable[[int, int], int]
    replaces_instructions: int
    gates: float
    cycles: int = 1

    def __post_init__(self) -> None:
        if self.replaces_instructions < 1:
            raise ValueError(f"{self.name}: must replace >=1 instruction")
        if self.gates <= 0:
            raise ValueError(f"{self.name}: gate count must be positive")
        if self.cycles < 1:
            raise ValueError(f"{self.name}: cycles must be >=1")


class ExtendedAssembler(Assembler):
    """Assembler accepting ``xop<k> rd, ra, rb`` custom opcodes."""

    def _parse(self, text, lineno, labels, pc):
        parts = text.replace(",", " ").split()
        op = parts[0].lower()
        if op.startswith("xop"):
            try:
                slot = int(op[3:])
            except ValueError:
                raise RiscError(f"line {lineno}: bad extension opcode {op!r}")
            if not 0 <= slot < XOP_SLOTS:
                raise RiscError(
                    f"line {lineno}: extension slot {slot} out of range "
                    f"(0..{XOP_SLOTS - 1})"
                )
            args = parts[1:]
            self._arity(op, args, 3, lineno)
            return Instruction(
                op=op,
                rd=self._reg(args[0], lineno),
                ra=self._reg(args[1], lineno),
                rb=self._reg(args[2], lineno),
                source_line=lineno,
            )
        return super()._parse(text, lineno, labels, pc)


class ReconfigurableCpu(RiscCpu):
    """A RISC ISS whose ``xop`` slots execute on an eFPGA fabric.

    Extensions are loaded with :meth:`configure` (which claims fabric
    LUTs) and removed with :meth:`unconfigure` (run-time
    reconfiguration).  Executing an unconfigured slot raises — exactly
    what the silicon would do.
    """

    def __init__(
        self,
        program: List[Instruction],
        fabric: Optional[EfpgaFabric] = None,
        **kwargs,
    ) -> None:
        super().__init__(program=program, **kwargs)
        self.fabric = fabric or EfpgaFabric(luts=8_000)
        self._slots: Dict[int, CustomInstruction] = {}
        self.xop_executions = 0
        self.reconfigurations = 0
        self._xop_equivalent_ops = 0

    def configure(self, slot: int, extension: CustomInstruction) -> None:
        """Load *extension* into an opcode slot, claiming fabric space."""
        if not 0 <= slot < XOP_SLOTS:
            raise RiscError(f"slot {slot} out of range (0..{XOP_SLOTS - 1})")
        if slot in self._slots:
            raise RiscError(
                f"slot {slot} already holds {self._slots[slot].name!r}; "
                "unconfigure it first"
            )
        self.fabric.map_function(f"xop{slot}:{extension.name}", extension.gates)
        self._slots[slot] = extension
        self.reconfigurations += 1

    def unconfigure(self, slot: int) -> None:
        """Free a slot (run-time reconfiguration)."""
        extension = self._slots.pop(slot, None)
        if extension is None:
            raise RiscError(f"slot {slot} is not configured")
        self.fabric.unmap(f"xop{slot}:{extension.name}")

    def configured_extensions(self) -> Dict[int, str]:
        return {slot: ext.name for slot, ext in self._slots.items()}

    def step(self) -> None:
        if self.halted:
            return
        if not 0 <= self.pc < len(self.program):
            raise RiscError(f"pc {self.pc} outside program")
        ins = self.program[self.pc]
        if not ins.op.startswith("xop"):
            super().step()
            return
        slot = int(ins.op[3:])
        extension = self._slots.get(slot)
        if extension is None:
            raise RiscError(
                f"executed unconfigured extension slot {slot} at "
                f"pc={self.pc} (line {ins.source_line})"
            )
        a = self.registers[ins.ra] & MASK32
        b = self.registers[ins.rb] & MASK32
        result = extension.semantics(a, b) & MASK32
        self._write(ins.rd, result)
        self.cycles += extension.cycles
        self.instructions_retired += 1
        self.xop_executions += 1
        self._xop_equivalent_ops += extension.replaces_instructions
        self.pc += 1

    def effective_ops_retired(self) -> int:
        """Base-ISA-equivalent operations retired: an ``xop`` execution
        counts as the instruction pattern it replaced — the numerator of
        the GOPS figure."""
        return (
            self.instructions_retired
            - self.xop_executions
            + self._xop_equivalent_ops
        )


def run_extended(
    source: str,
    extensions: Dict[int, CustomInstruction],
    memory: Optional[Dict[int, int]] = None,
    fabric: Optional[EfpgaFabric] = None,
) -> ReconfigurableCpu:
    """Assemble and run *source* with the given slot configuration."""
    program = ExtendedAssembler().assemble(source)
    cpu = ReconfigurableCpu(program=program, fabric=fabric, memory=dict(memory or {}))
    for slot, extension in extensions.items():
        cpu.configure(slot, extension)
    cpu.run()
    return cpu


def gops_estimate(
    cpu: ReconfigurableCpu,
    clock_mhz: float = 200.0,
    equivalent_ops_per_xop: Optional[float] = None,
) -> float:
    """Giga-operations per second sustained by the finished run.

    Operations are base-ISA equivalents: an ``xop`` counts as the
    pattern it replaced.  The paper's IC claims 1 GOPS at 0.18 um —
    reachable when wide extensions execute every few cycles.
    """
    if cpu.cycles == 0:
        return 0.0
    if equivalent_ops_per_xop is not None:
        base_ops = cpu.instructions_retired - cpu.xop_executions
        ops = base_ops + cpu.xop_executions * equivalent_ops_per_xop
    else:
        ops = cpu.effective_ops_retired()
    ops_per_cycle = ops / cpu.cycles
    return ops_per_cycle * clock_mhz * 1e6 / 1e9


# --- a standard extension library -------------------------------------------

def _mac16(a: int, b: int) -> int:
    """Multiply-accumulate of packed 16-bit halves: lo(a)*lo(b)+hi(a)*hi(b)."""
    lo = (a & 0xFFFF) * (b & 0xFFFF)
    hi = ((a >> 16) & 0xFFFF) * ((b >> 16) & 0xFFFF)
    return (lo + hi) & MASK32


def _sad8(a: int, b: int) -> int:
    """Sum of absolute differences over packed bytes (video kernels)."""
    total = 0
    for shift in (0, 8, 16, 24):
        xa = (a >> shift) & 0xFF
        xb = (b >> shift) & 0xFF
        total += abs(xa - xb)
    return total & MASK32


def _bitrev8(a: int, _b: int) -> int:
    """Bit-reverse the low byte (FFT address generation)."""
    byte = a & 0xFF
    reversed_byte = int(f"{byte:08b}"[::-1], 2)
    return (a & ~0xFF & MASK32) | reversed_byte


def _crc_step(a: int, b: int) -> int:
    """One byte of CRC-32 (polynomial 0xEDB88320) folded into the state."""
    crc = a ^ (b & 0xFF)
    for _ in range(8):
        crc = (crc >> 1) ^ (0xEDB88320 if crc & 1 else 0)
    return crc & MASK32


STANDARD_EXTENSIONS: Dict[str, CustomInstruction] = {
    ext.name: ext
    for ext in [
        CustomInstruction("mac16", _mac16, replaces_instructions=7,
                          gates=9_000, cycles=2),
        CustomInstruction("sad8", _sad8, replaces_instructions=16,
                          gates=6_000, cycles=2),
        CustomInstruction("bitrev8", _bitrev8, replaces_instructions=12,
                          gates=1_200, cycles=1),
        CustomInstruction("crc_step", _crc_step, replaces_instructions=20,
                          gates=4_500, cycles=2),
    ]
}
