"""Hardwired IP blocks.

Section 6.4: "Of course, hardware will not disappear!  But increasingly,
it will exist in the form of highly standardized functions, which
communicate via a standard protocol.  Examples include high-performance
video processing, e.g. an MPEG2 video codec."  A :class:`HardwiredIp`
is a fixed-function block with throughput/latency/area/power figures
and an OCP-style service loop for platform simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.noc.network import Network
from repro.noc.ocp import OcpSlave, Transaction


@dataclass(frozen=True)
class HardwiredIp:
    """A standardized fixed-function hardware block.

    Attributes
    ----------
    name:
        Function name.
    throughput_items_per_cycle:
        Work items (macroblocks, symbols, packets) completed per cycle.
    latency_cycles:
        Pipeline latency for one item.
    gates:
        Logic complexity.
    power_mw_at_reference:
        Active power at the reference clock.
    standard_protocol:
        The interface standard it speaks (the paper insists on
        standardized sockets — OCP here).
    """

    name: str
    throughput_items_per_cycle: float
    latency_cycles: float
    gates: float
    power_mw_at_reference: float
    standard_protocol: str = "OCP"

    def __post_init__(self) -> None:
        if self.throughput_items_per_cycle <= 0:
            raise ValueError(f"{self.name}: throughput must be positive")
        if self.latency_cycles < 0:
            raise ValueError(f"{self.name}: negative latency")

    def service_cycles(self, items: int) -> float:
        """Cycles to process *items* back-to-back work items."""
        if items < 1:
            raise ValueError(f"need >=1 item, got {items}")
        return self.latency_cycles + (items - 1) / self.throughput_items_per_cycle

    def attach(
        self,
        network: Network,
        terminal: int,
        items_per_request: int = 1,
    ) -> OcpSlave:
        """Expose the block as an OCP slave on a network terminal."""

        def handler(txn: Transaction):
            return {"ip": self.name, "processed": items_per_request, "req": txn.kind}

        return OcpSlave(
            network,
            terminal,
            access_latency=self.service_cycles(items_per_request),
            handler=handler,
            name=self.name,
        )


#: An MPEG-2 main-profile decoder: ~0.01 macroblocks/cycle sustains SD
#: video at ~100 MHz.
MPEG2_DECODER = HardwiredIp(
    name="mpeg2_decoder",
    throughput_items_per_cycle=0.01,
    latency_cycles=400.0,
    gates=450_000.0,
    power_mw_at_reference=120.0,
)

#: An MPEG-4 codec (the paper's Section 3 example of standard HW IP).
MPEG4_CODEC = HardwiredIp(
    name="mpeg4_codec",
    throughput_items_per_cycle=0.008,
    latency_cycles=600.0,
    gates=700_000.0,
    power_mw_at_reference=150.0,
)

#: A Viterbi decoder for wireless baseband.
VITERBI = HardwiredIp(
    name="viterbi_decoder",
    throughput_items_per_cycle=1.0,
    latency_cycles=64.0,
    gates=90_000.0,
    power_mw_at_reference=35.0,
)
