"""A small 32-bit RISC instruction-set simulator with assembler.

The "high-level IP block" level of the paper's abstraction stack
(Section 3, level 3) includes embedded RISC processors.  This ISS is
the executable stand-in: a load/store, 16-register, 32-bit integer
machine with a two-pass assembler.  It is used to derive cycle counts
for task models (e.g. the IPv4 header-processing kernels) and as a unit
of the "1000 RISC cores on a die" arithmetic (its logic complexity is
pinned to :data:`repro.economics.complexity.RISC32_LOGIC_TRANSISTORS`).

ISA
---
``add/sub/and/or/xor rd, ra, rb`` — three-register ALU ops (1 cycle)
``addi/subi/andi/ori/xori rd, ra, imm`` — immediate forms (1 cycle)
``shl/shr rd, ra, rb|imm`` — shifts (1 cycle)
``mul rd, ra, rb`` — multiply (3 cycles)
``lw rd, offset(ra)`` / ``sw rs, offset(ra)`` — load/store (2 cycles)
``li rd, imm`` — load immediate (1 cycle)
``mov rd, ra`` — register move (1 cycle)
``beq/bne/blt/bge ra, rb, label`` — branches (1 + 1 taken penalty)
``jmp label`` — unconditional jump (2 cycles)
``halt`` — stop execution
``nop``

Registers ``r0``..``r15``; ``r0`` reads as zero and ignores writes.
All arithmetic is modulo 2^32; ``blt/bge`` compare as signed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

MASK32 = 0xFFFFFFFF


class RiscError(Exception):
    """Assembly or execution error."""


def _signed(value: int) -> int:
    value &= MASK32
    return value - (1 << 32) if value & 0x80000000 else value


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    op: str
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0
    target: int = 0
    source_line: int = 0


#: Cycle cost per opcode (branch-taken penalty added at run time).
CYCLE_COSTS: Dict[str, int] = {
    "add": 1, "sub": 1, "and": 1, "or": 1, "xor": 1,
    "addi": 1, "subi": 1, "andi": 1, "ori": 1, "xori": 1,
    "shl": 1, "shr": 1, "shli": 1, "shri": 1,
    "mul": 3, "li": 1, "mov": 1,
    "lw": 2, "sw": 2,
    "beq": 1, "bne": 1, "blt": 1, "bge": 1,
    "jmp": 2, "halt": 1, "nop": 1,
}

_REG_RE = re.compile(r"^r(\d{1,2})$")
_MEM_RE = re.compile(r"^(-?\w+)\((r\d{1,2})\)$")
_LABEL_RE = re.compile(r"^([A-Za-z_]\w*):$")


class Assembler:
    """Two-pass assembler for the RISC ISA."""

    THREE_REG = {"add", "sub", "and", "or", "xor", "mul", "shl", "shr"}
    TWO_REG_IMM = {"addi", "subi", "andi", "ori", "xori", "shli", "shri"}
    BRANCHES = {"beq", "bne", "blt", "bge"}

    def assemble(self, source: str) -> List[Instruction]:
        """Assemble *source* text into an instruction list."""
        lines = self._clean(source)
        labels = self._collect_labels(lines)
        program: List[Instruction] = []
        for lineno, text in lines:
            if _LABEL_RE.match(text):
                continue
            program.append(self._parse(text, lineno, labels, len(program)))
        return program

    def _clean(self, source: str) -> List[Tuple[int, str]]:
        out = []
        for lineno, raw in enumerate(source.splitlines(), start=1):
            text = raw.split("#", 1)[0].split(";", 1)[0].strip()
            if text:
                out.append((lineno, text))
        return out

    def _collect_labels(self, lines: List[Tuple[int, str]]) -> Dict[str, int]:
        labels: Dict[str, int] = {}
        pc = 0
        for lineno, text in lines:
            match = _LABEL_RE.match(text)
            if match:
                name = match.group(1)
                if name in labels:
                    raise RiscError(f"line {lineno}: duplicate label {name!r}")
                labels[name] = pc
            else:
                pc += 1
        return labels

    def _parse(
        self,
        text: str,
        lineno: int,
        labels: Dict[str, int],
        pc: int,
    ) -> Instruction:
        parts = text.replace(",", " ").split()
        op = parts[0].lower()
        args = parts[1:]
        try:
            if op in ("halt", "nop"):
                self._arity(op, args, 0, lineno)
                return Instruction(op=op, source_line=lineno)
            if op == "jmp":
                self._arity(op, args, 1, lineno)
                return Instruction(
                    op=op, target=self._label(args[0], labels, lineno),
                    source_line=lineno,
                )
            if op in self.BRANCHES:
                self._arity(op, args, 3, lineno)
                return Instruction(
                    op=op,
                    ra=self._reg(args[0], lineno),
                    rb=self._reg(args[1], lineno),
                    target=self._label(args[2], labels, lineno),
                    source_line=lineno,
                )
            if op == "li":
                self._arity(op, args, 2, lineno)
                return Instruction(
                    op=op, rd=self._reg(args[0], lineno),
                    imm=self._imm(args[1], lineno), source_line=lineno,
                )
            if op == "mov":
                self._arity(op, args, 2, lineno)
                return Instruction(
                    op=op, rd=self._reg(args[0], lineno),
                    ra=self._reg(args[1], lineno), source_line=lineno,
                )
            if op in ("lw", "sw"):
                self._arity(op, args, 2, lineno)
                match = _MEM_RE.match(args[1])
                if not match:
                    raise RiscError(
                        f"line {lineno}: bad memory operand {args[1]!r}"
                    )
                offset = self._imm(match.group(1), lineno)
                base = self._reg(match.group(2), lineno)
                return Instruction(
                    op=op, rd=self._reg(args[0], lineno),
                    ra=base, imm=offset, source_line=lineno,
                )
            if op in self.THREE_REG:
                self._arity(op, args, 3, lineno)
                # Allow immediate third operand for shifts: shl rd, ra, 3.
                if op in ("shl", "shr") and not _REG_RE.match(args[2]):
                    return Instruction(
                        op=op + "i",
                        rd=self._reg(args[0], lineno),
                        ra=self._reg(args[1], lineno),
                        imm=self._imm(args[2], lineno),
                        source_line=lineno,
                    )
                return Instruction(
                    op=op,
                    rd=self._reg(args[0], lineno),
                    ra=self._reg(args[1], lineno),
                    rb=self._reg(args[2], lineno),
                    source_line=lineno,
                )
            if op in self.TWO_REG_IMM:
                self._arity(op, args, 3, lineno)
                return Instruction(
                    op=op,
                    rd=self._reg(args[0], lineno),
                    ra=self._reg(args[1], lineno),
                    imm=self._imm(args[2], lineno),
                    source_line=lineno,
                )
        except RiscError:
            raise
        except Exception as exc:  # pragma: no cover - defensive
            raise RiscError(f"line {lineno}: {exc}") from exc
        raise RiscError(f"line {lineno}: unknown opcode {op!r}")

    def _arity(self, op: str, args: List[str], want: int, lineno: int) -> None:
        if len(args) != want:
            raise RiscError(
                f"line {lineno}: {op} expects {want} operands, got {len(args)}"
            )

    def _reg(self, token: str, lineno: int) -> int:
        match = _REG_RE.match(token.lower())
        if not match:
            raise RiscError(f"line {lineno}: expected register, got {token!r}")
        index = int(match.group(1))
        if not 0 <= index <= 15:
            raise RiscError(f"line {lineno}: register r{index} out of range")
        return index

    def _imm(self, token: str, lineno: int) -> int:
        try:
            return int(token, 0)
        except ValueError:
            raise RiscError(
                f"line {lineno}: expected immediate, got {token!r}"
            ) from None

    def _label(self, token: str, labels: Dict[str, int], lineno: int) -> int:
        if token not in labels:
            raise RiscError(f"line {lineno}: undefined label {token!r}")
        return labels[token]


def assemble(source: str) -> List[Instruction]:
    """Module-level convenience wrapper around :class:`Assembler`."""
    return Assembler().assemble(source)


@dataclass
class RiscCpu:
    """Executes an assembled program against a word-addressed memory.

    ``memory`` maps word addresses to 32-bit values.  ``run`` returns
    total cycles consumed, the figure the task models use.
    """

    program: List[Instruction]
    memory: Dict[int, int] = field(default_factory=dict)
    registers: List[int] = field(default_factory=lambda: [0] * 16)
    pc: int = 0
    cycles: int = 0
    instructions_retired: int = 0
    halted: bool = False
    branch_taken_penalty: int = 1

    def reset(self) -> None:
        """Clear architectural state (memory is preserved)."""
        self.registers = [0] * 16
        self.pc = 0
        self.cycles = 0
        self.instructions_retired = 0
        self.halted = False

    def run(self, max_instructions: int = 1_000_000) -> int:
        """Execute until ``halt`` or the instruction cap; returns cycles."""
        while not self.halted:
            if self.instructions_retired >= max_instructions:
                raise RiscError(
                    f"instruction cap {max_instructions} exceeded "
                    f"(infinite loop?) at pc={self.pc}"
                )
            self.step()
        return self.cycles

    def step(self) -> None:
        """Execute one instruction."""
        if self.halted:
            return
        if not 0 <= self.pc < len(self.program):
            raise RiscError(f"pc {self.pc} outside program")
        ins = self.program[self.pc]
        self.cycles += CYCLE_COSTS[ins.op]
        self.instructions_retired += 1
        next_pc = self.pc + 1
        regs = self.registers
        op = ins.op
        if op == "halt":
            self.halted = True
        elif op == "nop":
            pass
        elif op in ("add", "addi"):
            value = regs[ins.ra] + (regs[ins.rb] if op == "add" else ins.imm)
            self._write(ins.rd, value)
        elif op in ("sub", "subi"):
            value = regs[ins.ra] - (regs[ins.rb] if op == "sub" else ins.imm)
            self._write(ins.rd, value)
        elif op in ("and", "andi"):
            self._write(ins.rd, regs[ins.ra] & (regs[ins.rb] if op == "and" else ins.imm))
        elif op in ("or", "ori"):
            self._write(ins.rd, regs[ins.ra] | (regs[ins.rb] if op == "or" else ins.imm))
        elif op in ("xor", "xori"):
            self._write(ins.rd, regs[ins.ra] ^ (regs[ins.rb] if op == "xor" else ins.imm))
        elif op in ("shl", "shli"):
            amount = (regs[ins.rb] if op == "shl" else ins.imm) & 31
            self._write(ins.rd, regs[ins.ra] << amount)
        elif op in ("shr", "shri"):
            amount = (regs[ins.rb] if op == "shr" else ins.imm) & 31
            self._write(ins.rd, (regs[ins.ra] & MASK32) >> amount)
        elif op == "mul":
            self._write(ins.rd, regs[ins.ra] * regs[ins.rb])
        elif op == "li":
            self._write(ins.rd, ins.imm)
        elif op == "mov":
            self._write(ins.rd, regs[ins.ra])
        elif op == "lw":
            address = (regs[ins.ra] + ins.imm) & MASK32
            self._write(ins.rd, self.memory.get(address, 0))
        elif op == "sw":
            address = (regs[ins.ra] + ins.imm) & MASK32
            self.memory[address] = regs[ins.rd] & MASK32
        elif op in ("beq", "bne", "blt", "bge"):
            taken = self._branch_taken(op, regs[ins.ra], regs[ins.rb])
            if taken:
                self.cycles += self.branch_taken_penalty
                next_pc = ins.target
        elif op == "jmp":
            next_pc = ins.target
        else:  # pragma: no cover - decoder guarantees coverage
            raise RiscError(f"unimplemented opcode {op!r}")
        self.pc = next_pc

    def _branch_taken(self, op: str, a: int, b: int) -> bool:
        if op == "beq":
            return (a & MASK32) == (b & MASK32)
        if op == "bne":
            return (a & MASK32) != (b & MASK32)
        if op == "blt":
            return _signed(a) < _signed(b)
        return _signed(a) >= _signed(b)

    def _write(self, rd: int, value: int) -> None:
        if rd != 0:
            self.registers[rd] = value & MASK32

    @property
    def cpi(self) -> float:
        """Cycles per retired instruction."""
        if self.instructions_retired == 0:
            return 0.0
        return self.cycles / self.instructions_retired


def run_program(
    source: str,
    memory: Optional[Dict[int, int]] = None,
    registers: Optional[Dict[int, int]] = None,
) -> RiscCpu:
    """Assemble and run *source*; returns the finished CPU for inspection."""
    cpu = RiscCpu(program=assemble(source), memory=dict(memory or {}))
    for reg, value in (registers or {}).items():
        if reg != 0:
            cpu.registers[reg] = value & MASK32
    cpu.run()
    return cpu
