"""Heterogeneous processing elements.

Section 6.2 of the paper: "MP-SoC platforms will include ten to
hundreds of embedded processors ... in a wide diversity, from
general-purpose RISC to specialized application-specific instruction-set
processors (ASIP), with different trade-offs in time-to-market versus
product differentiation (power, performance, cost), as depicted in
Figure 1."

* :mod:`repro.processors.classes` — the Figure-1 spectrum as data;
* :mod:`repro.processors.multithread` — the hardware-multithreaded PE
  ("separate register banks for different threads, with hardware units
  that schedule threads and swap them in one cycle");
* :mod:`repro.processors.risc` — a small 32-bit RISC ISS with assembler;
* :mod:`repro.processors.dsp` / :mod:`repro.processors.asip` — kernel-
  level models of specialized processors;
* :mod:`repro.processors.efpga` — embedded FPGA fabric macro-model;
* :mod:`repro.processors.hwip` — hardwired standard-function IP;
* :mod:`repro.processors.ioblocks` — the standard I/O families.
"""

from repro.processors.classes import (
    FIGURE1_CLASSES,
    ProcessorClass,
    ProcessorKind,
    figure1_series,
    pareto_front,
)
from repro.processors.multithread import (
    HardwareMultithreadedPE,
    ThreadContext,
    ideal_utilization,
)
from repro.processors.risc import Assembler, RiscCpu, RiscError, assemble
from repro.processors.dsp import DspKernel, DspModel, STANDARD_KERNELS
from repro.processors.asip import AsipModel, Specialization
from repro.processors.efpga import EfpgaFabric, EFPGA_AREA_PENALTY, EFPGA_POWER_PENALTY
from repro.processors.hwip import HardwiredIp, MPEG2_DECODER, MPEG4_CODEC, VITERBI
from repro.processors.ioblocks import IoBlock, STANDARD_IO_FAMILIES

__all__ = [
    "Assembler",
    "AsipModel",
    "DspKernel",
    "DspModel",
    "EFPGA_AREA_PENALTY",
    "EFPGA_POWER_PENALTY",
    "EfpgaFabric",
    "FIGURE1_CLASSES",
    "HardwareMultithreadedPE",
    "HardwiredIp",
    "IoBlock",
    "MPEG2_DECODER",
    "MPEG4_CODEC",
    "ProcessorClass",
    "ProcessorKind",
    "RiscCpu",
    "RiscError",
    "STANDARD_IO_FAMILIES",
    "STANDARD_KERNELS",
    "Specialization",
    "ThreadContext",
    "VITERBI",
    "assemble",
    "figure1_series",
    "ideal_utilization",
    "pareto_front",
]
