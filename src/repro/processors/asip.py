"""Application-specific instruction-set processor (ASIP) model.

The paper names ASIPs and configurable processors (Arc, Tensilica) as
the middle of the Figure-1 spectrum: "one possible means to achieve
processor specialization from a RISC-based platform".  The model
follows the configurable-processor methodology: start from a base RISC
CPI, add custom instructions that collapse multi-instruction patterns
of the target kernels, pay for each in area.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class Specialization:
    """One custom-instruction extension.

    Attributes
    ----------
    name:
        Instruction (cluster) name, e.g. ``"checksum16"``.
    pattern_length:
        Base-ISA instructions the custom instruction replaces.
    coverage:
        Fraction of the target workload's dynamic instructions that
        belong to this pattern.
    area_gates:
        Extra gates the extension costs.
    """

    name: str
    pattern_length: int
    coverage: float
    area_gates: float

    def __post_init__(self) -> None:
        if self.pattern_length < 2:
            raise ValueError(
                f"{self.name}: pattern must collapse >=2 instructions"
            )
        if not 0.0 < self.coverage <= 1.0:
            raise ValueError(f"{self.name}: coverage must be in (0,1]")
        if self.area_gates < 0:
            raise ValueError(f"{self.name}: negative area")


@dataclass
class AsipModel:
    """A RISC core extended with custom instructions.

    Speedup per Amdahl: workload fraction ``coverage`` runs
    ``pattern_length`` times faster (the pattern issues as one
    instruction).  Extensions' coverages must not overlap (sum <= 1).
    """

    name: str = "asip"
    base_cpi: float = 1.3
    base_gates: float = 30_000.0
    clock_mhz: float = 400.0
    extensions: Dict[str, Specialization] = field(default_factory=dict)

    def add_extension(self, ext: Specialization) -> None:
        """Add a custom instruction; rejects overlapping coverage."""
        total = sum(e.coverage for e in self.extensions.values()) + ext.coverage
        if total > 1.0 + 1e-9:
            raise ValueError(
                f"extension coverages sum to {total:.2f} > 1.0 — "
                "patterns must partition the workload"
            )
        if ext.name in self.extensions:
            raise ValueError(f"duplicate extension {ext.name!r}")
        self.extensions[ext.name] = ext

    def speedup(self) -> float:
        """Workload speedup vs. the unextended base core (Amdahl)."""
        remaining = 1.0
        accelerated = 0.0
        for ext in self.extensions.values():
            remaining -= ext.coverage
            accelerated += ext.coverage / ext.pattern_length
        return 1.0 / (remaining + accelerated)

    def total_gates(self) -> float:
        """Core gates including extensions."""
        return self.base_gates + sum(e.area_gates for e in self.extensions.values())

    def efficiency_gain(self) -> Tuple[float, float]:
        """(speedup, area ratio) vs. the base core — the ASIP tradeoff."""
        return self.speedup(), self.total_gates() / self.base_gates

    def mips(self) -> float:
        """Millions of (base-equivalent) instructions per second."""
        return self.clock_mhz / self.base_cpi * self.speedup()
