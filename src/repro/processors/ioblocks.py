"""Standard I/O component families.

Section 6.4: "Increasing standardization of I/O's for different market
spaces will leave a dozen main I/O families: e.g. PCI evolutions,
RapidIO, HyperTransport, SPI-x, USB, FireWire, QDR, etc.  Their
integration into the SoC will be facilitated by the network-on-chip's
standardized protocol and scalability."  An :class:`IoBlock` describes
one family and can bridge external line traffic into the NoC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.sim.core import Simulator, Timeout


@dataclass(frozen=True)
class IoBlock:
    """One standard I/O interface family.

    Attributes
    ----------
    name:
        Family name.
    bandwidth_gbps:
        Peak line rate.
    latency_ns:
        Interface latency.
    gates:
        Controller logic complexity.
    market:
        The application space the paper associates with the family.
    """

    name: str
    bandwidth_gbps: float
    latency_ns: float
    gates: float
    market: str

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError(f"{self.name}: bandwidth must be positive")

    def bytes_per_cycle(self, clock_ghz: float) -> float:
        """Payload bytes deliverable per SoC clock cycle."""
        if clock_ghz <= 0:
            raise ValueError(f"clock must be positive, got {clock_ghz}")
        return self.bandwidth_gbps / 8.0 / clock_ghz

    def packet_interarrival_cycles(
        self, packet_bytes: int, clock_ghz: float
    ) -> float:
        """Cycles between back-to-back packets at full line rate.

        This is the worst-case arrival process of experiment E14: 40-byte
        packets on a 10 Gbit/s interface at a 500 MHz SoC clock arrive
        every 16 cycles.
        """
        if packet_bytes < 1:
            raise ValueError(f"packet must be >=1 byte, got {packet_bytes}")
        return packet_bytes / self.bytes_per_cycle(clock_ghz)


#: The paper's "dozen main I/O families" with era-typical figures.
STANDARD_IO_FAMILIES: dict[str, IoBlock] = {
    b.name: b
    for b in [
        IoBlock("pci", 1.06, 120.0, 40_000, "general"),
        IoBlock("pci_x", 8.5, 100.0, 70_000, "general"),
        IoBlock("rapidio", 10.0, 60.0, 120_000, "communications"),
        IoBlock("hypertransport", 12.8, 50.0, 150_000, "computing"),
        IoBlock("spi4", 10.0, 40.0, 90_000, "networking line cards"),
        IoBlock("usb2", 0.48, 400.0, 25_000, "consumer"),
        IoBlock("firewire", 0.8, 250.0, 30_000, "consumer av"),
        IoBlock("qdr_sram", 16.0, 20.0, 60_000, "network memory"),
        IoBlock("i2c", 0.0004, 10_000.0, 2_000, "control"),
        IoBlock("utopia", 0.622, 90.0, 35_000, "atm"),
        IoBlock("gmii", 1.0, 80.0, 30_000, "ethernet"),
        IoBlock("xaui", 10.0, 50.0, 110_000, "10g ethernet"),
    ]
}


class LineInterface:
    """Bridges an external line onto NoC terminals.

    Generates packet-arrival events at line rate and injects NoC
    packets toward a dispatcher terminal — the ingress path of the
    StepNP networking platform (Figure 2).
    """

    def __init__(
        self,
        network: Network,
        io_block: IoBlock,
        terminal: int,
        clock_ghz: float,
        packet_bytes: int = 40,
        flit_bytes: int = 8,
        payload_factory: Optional[Callable[[int], object]] = None,
    ) -> None:
        self.network = network
        self.io_block = io_block
        self.terminal = terminal
        self.clock_ghz = clock_ghz
        self.packet_bytes = packet_bytes
        self.flit_bytes = flit_bytes
        self.payload_factory = payload_factory
        self.packets_in = 0

    @property
    def interarrival_cycles(self) -> float:
        return self.io_block.packet_interarrival_cycles(
            self.packet_bytes, self.clock_ghz
        )

    def start(self, destination: int, count: int) -> None:
        """Inject *count* line packets toward *destination* at line rate."""
        sim: Simulator = self.network.sim
        gap = self.interarrival_cycles
        size_flits = max(1, -(-self.packet_bytes // self.flit_bytes))

        def feeder():
            for index in range(count):
                payload = (
                    self.payload_factory(index)
                    if self.payload_factory is not None
                    else index
                )
                packet = Packet(
                    src=self.terminal,
                    dst=destination,
                    size_flits=size_flits,
                    payload=payload,
                )
                self.packets_in += 1
                self.network.send(packet)
                yield Timeout(gap)

        sim.spawn(feeder(), name=f"line-{self.io_block.name}")
