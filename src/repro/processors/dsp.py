"""DSP processor model.

DSPs occupy the second position on the Figure-1 spectrum: programmable,
but with MAC-oriented datapaths that execute signal-processing kernels
several times faster than a GP RISC.  The model is kernel-level: each
:class:`DspKernel` has a cycle formula on a reference DSP, and
:class:`DspModel` scales it by issue width and MAC count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict


@dataclass(frozen=True)
class DspKernel:
    """A signal-processing kernel with an analytic cycle count.

    ``cycles(n)`` gives single-MAC reference cycles for problem size n.
    ``parallel_fraction`` bounds the speedup multiple MACs can extract
    (Amdahl on the kernel's inner loop).
    """

    name: str
    cycles: Callable[[int], float]
    parallel_fraction: float = 0.95

    def reference_cycles(self, n: int) -> float:
        if n < 1:
            raise ValueError(f"kernel size must be >=1, got {n}")
        return self.cycles(n)


#: Standard kernels with textbook cycle formulas (single-MAC reference).
STANDARD_KERNELS: Dict[str, DspKernel] = {
    k.name: k
    for k in [
        DspKernel("fir", lambda n: 64.0 * n, parallel_fraction=0.98),
        DspKernel("iir_biquad", lambda n: 10.0 * n, parallel_fraction=0.90),
        DspKernel(
            "fft",
            lambda n: 5.0 * n * max(1.0, math.log2(n)),
            parallel_fraction=0.95,
        ),
        DspKernel("dot_product", lambda n: float(n), parallel_fraction=0.99),
        DspKernel("viterbi_acs", lambda n: 16.0 * n, parallel_fraction=0.92),
    ]
}


@dataclass(frozen=True)
class DspModel:
    """A DSP instance: MAC count, issue width, clock.

    ``kernel_cycles`` applies Amdahl's law over the MAC array;
    ``kernel_time_us`` converts to microseconds at the DSP clock.
    """

    name: str = "dsp"
    mac_units: int = 2
    issue_width: int = 2
    clock_mhz: float = 300.0
    overhead_cycles_per_call: float = 50.0

    def __post_init__(self) -> None:
        if self.mac_units < 1:
            raise ValueError(f"need >=1 MAC, got {self.mac_units}")
        if self.clock_mhz <= 0:
            raise ValueError(f"clock must be positive, got {self.clock_mhz}")

    def kernel_cycles(self, kernel: DspKernel, n: int) -> float:
        """Cycles to run *kernel* of size *n* on this DSP."""
        reference = kernel.reference_cycles(n)
        p = kernel.parallel_fraction
        speedup = 1.0 / ((1.0 - p) + p / self.mac_units)
        return self.overhead_cycles_per_call + reference / speedup

    def kernel_time_us(self, kernel: DspKernel, n: int) -> float:
        return self.kernel_cycles(kernel, n) / self.clock_mhz

    def speedup_vs_risc(self, kernel: DspKernel, n: int, risc_factor: float = 4.0) -> float:
        """Throughput ratio vs. a GP RISC running the same kernel.

        A RISC takes ~*risc_factor* times the single-MAC reference
        cycles (no MAC hardware, more overhead per tap).
        """
        risc_cycles = risc_factor * kernel.reference_cycles(n)
        return risc_cycles / self.kernel_cycles(kernel, n)
