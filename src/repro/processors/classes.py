"""The Figure-1 processor spectrum.

Figure 1 of the paper arranges implementation vehicles on two axes:
ease-of-use / time-to-market on one, and product differentiation
(power, performance, cost) on the other.  General-purpose RISC sits at
the flexible/slow end, hardwired logic at the efficient/rigid end, with
DSPs, configurable processors (Arc, Tensilica), ASIPs, reconfigurable
processors and eFPGA in between.  Experiment E8 regenerates the figure
as a data series and checks the expected monotone tradeoff.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ProcessorKind(Enum):
    """Vehicles on the Figure-1 spectrum, flexible-first."""

    GENERAL_PURPOSE_RISC = "gp_risc"
    DSP = "dsp"
    CONFIGURABLE_PROCESSOR = "configurable"     # Arc/Tensilica-style
    ASIP = "asip"
    RECONFIGURABLE_PROCESSOR = "reconfigurable"  # run-time architecture changes
    EFPGA = "efpga"
    HARDWIRED = "hardwired"


@dataclass(frozen=True)
class ProcessorClass:
    """Quantified position of one vehicle on the Figure-1 axes.

    Attributes
    ----------
    kind:
        Which vehicle.
    flexibility:
        0-1: fraction of conceivable spec changes absorbable after
        silicon (software change vs. respin).
    time_to_market_months:
        Typical time to retarget an existing application.
    relative_performance:
        Throughput on its target kernel class, normalized to GP RISC = 1.
    relative_power_efficiency:
        Useful operations per joule, normalized to GP RISC = 1.
    relative_area_efficiency:
        Useful operations per mm^2, normalized to GP RISC = 1.
    programming_effort:
        Relative effort to (re)program: 1 = plain C on a RISC.
    """

    kind: ProcessorKind
    flexibility: float
    time_to_market_months: float
    relative_performance: float
    relative_power_efficiency: float
    relative_area_efficiency: float
    programming_effort: float

    def differentiation(self) -> float:
        """Scalar "product differentiation" score (geometric mean of the
        performance/power/area advantages), the paper's vertical axis."""
        return (
            self.relative_performance
            * self.relative_power_efficiency
            * self.relative_area_efficiency
        ) ** (1.0 / 3.0)


#: Literature-typical values for the early-2000s design space.  The
#: hardwired end is ~100x more energy-efficient than a GP RISC on its
#: target function; eFPGA sits ~10x below hardwired (the paper's 10x
#: penalty); specialization steps (DSP, configurable, ASIP) each buy
#: roughly 2-4x.
FIGURE1_CLASSES: dict[ProcessorKind, ProcessorClass] = {
    c.kind: c
    for c in [
        ProcessorClass(
            kind=ProcessorKind.GENERAL_PURPOSE_RISC,
            flexibility=1.00, time_to_market_months=1.0,
            relative_performance=1.0, relative_power_efficiency=1.0,
            relative_area_efficiency=1.0, programming_effort=1.0,
        ),
        ProcessorClass(
            kind=ProcessorKind.DSP,
            flexibility=0.85, time_to_market_months=2.0,
            relative_performance=4.0, relative_power_efficiency=3.0,
            relative_area_efficiency=3.0, programming_effort=2.0,
        ),
        ProcessorClass(
            kind=ProcessorKind.CONFIGURABLE_PROCESSOR,
            flexibility=0.70, time_to_market_months=4.0,
            relative_performance=8.0, relative_power_efficiency=6.0,
            relative_area_efficiency=5.0, programming_effort=3.0,
        ),
        ProcessorClass(
            kind=ProcessorKind.ASIP,
            flexibility=0.55, time_to_market_months=8.0,
            relative_performance=15.0, relative_power_efficiency=12.0,
            relative_area_efficiency=10.0, programming_effort=5.0,
        ),
        ProcessorClass(
            kind=ProcessorKind.RECONFIGURABLE_PROCESSOR,
            flexibility=0.60, time_to_market_months=6.0,
            relative_performance=10.0, relative_power_efficiency=7.0,
            relative_area_efficiency=4.0, programming_effort=6.0,
        ),
        ProcessorClass(
            kind=ProcessorKind.EFPGA,
            flexibility=0.45, time_to_market_months=5.0,
            relative_performance=20.0, relative_power_efficiency=10.0,
            relative_area_efficiency=10.0, programming_effort=8.0,
        ),
        ProcessorClass(
            kind=ProcessorKind.HARDWIRED,
            flexibility=0.02, time_to_market_months=18.0,
            relative_performance=50.0, relative_power_efficiency=100.0,
            relative_area_efficiency=100.0, programming_effort=20.0,
        ),
    ]
}


def figure1_series() -> list[dict]:
    """Figure 1 as rows: (vehicle, flexibility, differentiation, TTM)."""
    rows = []
    for kind, cls in FIGURE1_CLASSES.items():
        rows.append(
            {
                "vehicle": kind.value,
                "flexibility": cls.flexibility,
                "time_to_market_months": cls.time_to_market_months,
                "differentiation": round(cls.differentiation(), 2),
                "power_efficiency": cls.relative_power_efficiency,
                "performance": cls.relative_performance,
            }
        )
    return rows


def pareto_front(
    classes: dict[ProcessorKind, ProcessorClass] | None = None,
) -> list[ProcessorKind]:
    """Vehicles not dominated on (flexibility, differentiation).

    Figure 1's message is that the spectrum *is* a tradeoff: more
    differentiation costs flexibility.  A vehicle is dominated if
    another is at least as good on both axes and better on one.
    """
    classes = classes or FIGURE1_CLASSES
    front = []
    for kind, cls in classes.items():
        dominated = False
        for other_kind, other in classes.items():
            if other_kind is kind:
                continue
            if (
                other.flexibility >= cls.flexibility
                and other.differentiation() >= cls.differentiation()
                and (
                    other.flexibility > cls.flexibility
                    or other.differentiation() > cls.differentiation()
                )
            ):
                dominated = True
                break
        if not dominated:
            front.append(kind)
    return front


def pick_vehicle(
    required_flexibility: float,
    classes: dict[ProcessorKind, ProcessorClass] | None = None,
) -> ProcessorClass:
    """Most differentiated vehicle meeting a flexibility floor."""
    if not 0.0 <= required_flexibility <= 1.0:
        raise ValueError(
            f"flexibility requirement must be in [0,1], got {required_flexibility}"
        )
    classes = classes or FIGURE1_CLASSES
    feasible = [
        c for c in classes.values() if c.flexibility >= required_flexibility
    ]
    if not feasible:
        raise ValueError(
            f"no vehicle offers flexibility >= {required_flexibility}"
        )
    return max(feasible, key=lambda c: c.differentiation())
