"""Hardware-multithreaded processing element.

Section 6.2: "Multithreading lets the processor execute other streams
while another thread is blocked on a high latency operation.  A hardware
multithreaded processor has separate register banks for different
threads, with hardware units that schedule threads and swap them in one
cycle."  This model is the heart of experiments E11 and E14: it shows
near-100% core utilization in the face of >100-cycle NoC latencies once
enough thread contexts exist.

Model
-----
The core issues from one thread at a time.  A thread alternates compute
segments (which occupy the core) and remote operations (which do not —
split transactions).  Swapping to a different thread costs
``swap_cycles`` (1 for hardware multithreading; tens to hundreds for a
software context switch, which experiment E11's ablation sweeps).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.core import Event, SimulationError, Simulator, Timeout
from repro.sim.resources import Resource


class ThreadContext:
    """Per-thread handle passed to thread body generators.

    Thread bodies use ``yield from ctx.compute(n)`` for work that
    occupies the core for *n* cycles, and ``yield from ctx.remote(ev)``
    to wait on a split transaction (the core is surrendered while
    waiting).
    """

    def __init__(self, pe: "HardwareMultithreadedPE", thread_id: int) -> None:
        self.pe = pe
        self.thread_id = thread_id
        self.sim: Simulator = pe.sim
        self.completed_items = 0
        self.compute_cycles = 0.0
        self.stall_cycles = 0.0

    def compute(self, cycles: float) -> Generator[Any, Any, None]:
        """Occupy the core for *cycles* of useful work."""
        if cycles < 0:
            raise SimulationError(f"negative compute time {cycles}")
        yield self.pe._acquire(self.thread_id)
        yield Timeout(cycles)
        self.compute_cycles += cycles
        self.pe._busy_cycles += cycles
        self.pe._release()

    def remote(self, event: Event) -> Generator[Any, Any, Any]:
        """Wait for a split transaction without holding the core."""
        start = self.sim.now
        value = yield event
        self.stall_cycles += self.sim.now - start
        return value

    def remote_delay(self, cycles: float) -> Generator[Any, Any, None]:
        """Convenience: a fixed-latency remote operation."""
        start = self.sim.now
        yield Timeout(cycles)
        self.stall_cycles += self.sim.now - start

    def item_done(self) -> None:
        """Mark one work item completed (throughput accounting)."""
        self.completed_items += 1
        self.pe.completed_items += 1


ThreadBody = Callable[[ThreadContext], Generator[Any, Any, Any]]


class HardwareMultithreadedPE:
    """A processor core with N hardware thread contexts.

    Parameters
    ----------
    sim:
        Simulation kernel.
    num_threads:
        Hardware contexts (register banks).
    swap_cycles:
        Cost of switching the core to a different thread.  1.0 models
        the paper's single-cycle hardware swap; pass e.g. 100 to model
        a software (OS) context switch.
    name:
        Label for reports.
    """

    def __init__(
        self,
        sim: Simulator,
        num_threads: int = 4,
        swap_cycles: float = 1.0,
        name: str = "pe",
    ) -> None:
        if num_threads < 1:
            raise SimulationError(f"need >=1 thread, got {num_threads}")
        if swap_cycles < 0:
            raise SimulationError(f"negative swap cost {swap_cycles}")
        self.sim = sim
        self.num_threads = num_threads
        self.swap_cycles = swap_cycles
        self.name = name
        self._core = Resource(sim, capacity=1, name=f"{name}.core")
        self._current_thread: Optional[int] = None
        self._busy_cycles = 0.0
        self._swap_overhead_cycles = 0.0
        self.completed_items = 0
        self.contexts: list[ThreadContext] = []
        self._start_time = sim.now

    def spawn_thread(self, body: ThreadBody) -> ThreadContext:
        """Create a context and start *body* on it."""
        if len(self.contexts) >= self.num_threads:
            raise SimulationError(
                f"{self.name} has only {self.num_threads} hardware contexts"
            )
        ctx = ThreadContext(self, len(self.contexts))
        self.contexts.append(ctx)
        self.sim.spawn(body(ctx), name=f"{self.name}.t{ctx.thread_id}")
        return ctx

    def _acquire(self, thread_id: int) -> Event:
        """Request the core for a thread; charges swap cost on a switch."""
        grant = self._core.request()
        done = self.sim.event(f"{self.name}.grant")

        def on_grant(_ev: Event) -> None:
            if self._current_thread is not None and self._current_thread != thread_id:
                swap = self.swap_cycles
                self._swap_overhead_cycles += swap
                self._current_thread = thread_id

                def after_swap() -> None:
                    done.succeed(None)

                self.sim.schedule(swap, after_swap)
            else:
                self._current_thread = thread_id
                done.succeed(None)

        if grant.triggered:
            on_grant(grant)
        else:
            grant.callbacks.append(on_grant)
        return done

    def _release(self) -> None:
        self._core.release()

    # -- metrics -------------------------------------------------------------

    def utilization(self) -> float:
        """Useful-work fraction of elapsed core time (excludes swaps)."""
        elapsed = self.sim.now - self._start_time
        if elapsed <= 0:
            return 0.0
        return self._busy_cycles / elapsed

    def occupancy(self) -> float:
        """Busy-or-swapping fraction of elapsed core time."""
        elapsed = self.sim.now - self._start_time
        if elapsed <= 0:
            return 0.0
        return (self._busy_cycles + self._swap_overhead_cycles) / elapsed

    @property
    def busy_cycles(self) -> float:
        return self._busy_cycles

    @property
    def swap_overhead_cycles(self) -> float:
        return self._swap_overhead_cycles

    def throughput(self) -> float:
        """Completed work items per cycle."""
        elapsed = self.sim.now - self._start_time
        return self.completed_items / elapsed if elapsed > 0 else 0.0


def ideal_utilization(
    num_threads: int,
    compute_cycles: float,
    remote_latency: float,
) -> float:
    """Closed-form utilization bound for the alternating workload.

    A thread computes for ``compute_cycles`` then waits
    ``remote_latency``; with N threads interleaving, core utilization is
    ``min(1, N * c / (c + L))``.  The simulated PE should approach this
    bound (minus swap overhead) — experiment E11 checks it.
    """
    if num_threads < 1:
        raise ValueError(f"need >=1 thread, got {num_threads}")
    if compute_cycles <= 0:
        raise ValueError(f"compute segment must be positive, got {compute_cycles}")
    if remote_latency < 0:
        raise ValueError(f"negative latency {remote_latency}")
    return min(1.0, num_threads * compute_cycles / (compute_cycles + remote_latency))


def run_latency_hiding_experiment(
    num_threads: int,
    compute_cycles: float,
    remote_latency: float,
    duration: float = 20000.0,
    swap_cycles: float = 1.0,
) -> dict[str, float]:
    """Simulate the canonical compute/remote alternation and report.

    Returns utilization, occupancy, throughput, and the analytic bound
    for comparison.
    """
    sim = Simulator()
    pe = HardwareMultithreadedPE(
        sim, num_threads=num_threads, swap_cycles=swap_cycles
    )

    def body(ctx: ThreadContext):
        while ctx.sim.now < duration:
            yield from ctx.compute(compute_cycles)
            yield from ctx.remote_delay(remote_latency)
            ctx.item_done()

    for _ in range(num_threads):
        pe.spawn_thread(body)
    sim.run(until=duration)
    return {
        "num_threads": num_threads,
        "compute_cycles": compute_cycles,
        "remote_latency": remote_latency,
        "utilization": pe.utilization(),
        "occupancy": pe.occupancy(),
        "throughput": pe.throughput(),
        "ideal": ideal_utilization(num_threads, compute_cycles, remote_latency),
    }
