"""Embedded FPGA fabric macro-model.

Section 6.3: "Embedded FPGA's (eFPGA) will complement the processors,
but only with limited scope (less than 5% of the IC functionality).
The 10X cost and power penalty of eFPGA's will restrict their further
use."  The fabric is modelled at the macro level — LUT count, area,
power, achievable clock — because the paper's claims live there, not at
bitstream level (see DESIGN.md substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Area of an eFPGA implementation relative to standard-cell hardwired
#: logic of the same function (the paper's "10X cost penalty").
EFPGA_AREA_PENALTY = 10.0

#: Power relative to hardwired logic of the same function at the same
#: throughput (the paper's "10X power penalty").
EFPGA_POWER_PENALTY = 10.0

#: Achievable clock relative to hardwired logic (routing fabric is slow).
EFPGA_CLOCK_FACTOR = 0.33

#: Equivalent ASIC gates represented by one 4-input LUT.
GATES_PER_LUT = 8.0


@dataclass
class MappedFunction:
    """A function configured onto the fabric."""

    name: str
    asic_gates: float
    luts: float
    throughput_factor: float  # vs hardwired implementation


@dataclass
class EfpgaFabric:
    """An embedded FPGA tile: capacity, area/power accounting, mapping.

    Parameters
    ----------
    luts:
        4-input LUT capacity.
    area_mm2_per_kilolut:
        Fabric area per 1000 LUTs (node-dependent; default is a 130 nm
        figure).
    dynamic_mw_per_kilolut:
        Active power per 1000 occupied LUTs at the fabric clock.
    """

    name: str = "efpga"
    luts: int = 20_000
    area_mm2_per_kilolut: float = 0.8
    dynamic_mw_per_kilolut: float = 15.0
    mapped: Dict[str, MappedFunction] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.luts < 1:
            raise ValueError(f"fabric needs >=1 LUT, got {self.luts}")

    @property
    def luts_used(self) -> float:
        return sum(f.luts for f in self.mapped.values())

    @property
    def luts_free(self) -> float:
        return self.luts - self.luts_used

    @property
    def occupancy(self) -> float:
        return self.luts_used / self.luts

    def map_function(self, name: str, asic_gates: float) -> MappedFunction:
        """Configure a function of *asic_gates* hardwired-equivalent gates.

        Raises :class:`ValueError` when the fabric lacks capacity — the
        hard limit that, combined with the 10x penalty, keeps eFPGA
        below ~5% of SoC functionality.
        """
        if name in self.mapped:
            raise ValueError(f"function {name!r} already mapped")
        if asic_gates <= 0:
            raise ValueError(f"gate count must be positive, got {asic_gates}")
        # The routing/configuration overhead is captured in the per-LUT
        # area and power figures, not in the LUT count itself.
        luts = asic_gates / GATES_PER_LUT
        if luts > self.luts_free:
            raise ValueError(
                f"function {name!r} needs {luts:.0f} LUTs, only "
                f"{self.luts_free:.0f} free"
            )
        function = MappedFunction(
            name=name,
            asic_gates=asic_gates,
            luts=luts,
            throughput_factor=EFPGA_CLOCK_FACTOR,
        )
        self.mapped[name] = function
        return function

    def unmap(self, name: str) -> None:
        """Remove a configured function (run-time reconfiguration)."""
        if name not in self.mapped:
            raise ValueError(f"function {name!r} not mapped")
        del self.mapped[name]

    def area_mm2(self) -> float:
        """Total fabric area (paid whether or not LUTs are occupied)."""
        return self.luts / 1000.0 * self.area_mm2_per_kilolut

    def dynamic_power_mw(self) -> float:
        """Active power of the occupied portion."""
        return self.luts_used / 1000.0 * self.dynamic_mw_per_kilolut

    def area_vs_hardwired(self) -> float:
        """Area ratio of mapped functions vs. hardwiring them.

        Approaches :data:`EFPGA_AREA_PENALTY` when the fabric is full;
        worse when underutilized (idle fabric is pure overhead).
        """
        hardwired_gates = sum(f.asic_gates for f in self.mapped.values())
        if hardwired_gates == 0:
            return float("inf")
        # Hardwired density reference: GATES_PER_LUT gates occupy the
        # LUT-equivalent area divided by the penalty.
        hardwired_area = (
            hardwired_gates / GATES_PER_LUT / 1000.0
            * self.area_mm2_per_kilolut / EFPGA_AREA_PENALTY
        )
        return self.area_mm2() / hardwired_area

    def power_vs_hardwired(self) -> float:
        """Power ratio of mapped functions vs. hardwiring them."""
        if not self.mapped:
            return float("inf")
        return EFPGA_POWER_PENALTY

    def suitability(self, task_regularity: float, reuse_across_time: float) -> float:
        """Heuristic 0-1 fit score per the paper's Section 6.3 guidance.

        eFPGAs suit "well-defined, repeatable function[s]" and "highly
        parallel and regular computations"; they are "not well-suited to
        small scale time division multiplexing of different tasks".
        High *task_regularity* helps; high *reuse_across_time* (the same
        configuration used continuously) helps; frequent re-purposing
        hurts.
        """
        for name, v in (
            ("task_regularity", task_regularity),
            ("reuse_across_time", reuse_across_time),
        ):
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0,1], got {v}")
        return task_regularity * reuse_across_time
