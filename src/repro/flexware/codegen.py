"""Code generation from the IR to the RISC ISS.

Linear-scan register allocation over the straight-line IR's live
ranges, with spilling to a stack area when the twelve allocatable
registers run out.  The emitted assembly is real: it assembles with
:mod:`repro.processors.risc` and executes on the ISS, and the test
suite checks the result against the IR's reference evaluator over
random programs.

Register convention
-------------------
``r1``-``r12``: allocatable; ``r13``: spill-area base; ``r14``:
scratch for reloads/immediates; ``r15``: second scratch.  Inputs are
passed pre-loaded into their temps' home locations by the harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.flexware.ir import IrError, IrOp, IrProgram
from repro.processors.risc import RiscCpu, assemble

ALLOCATABLE = list(range(1, 13))
SPILL_BASE_REG = 13
SCRATCH_A = 14
SCRATCH_B = 15

#: Word-addressed base of the spill area in the ISS memory.
SPILL_AREA_BASE = 0x8000


@dataclass
class Location:
    """Where a temp lives: a register or a spill slot."""

    register: Optional[int] = None
    spill_slot: Optional[int] = None

    @property
    def spilled(self) -> bool:
        return self.register is None


@dataclass
class CompiledProgram:
    """The output of :func:`compile_to_risc`."""

    assembly: str
    locations: Dict[int, Location]
    spill_slots: int
    instructions: int

    def run(
        self,
        inputs: Dict[int, int],
        memory: Optional[Dict[int, int]] = None,
    ) -> Tuple[int, RiscCpu]:
        """Execute on the ISS; returns (result, finished cpu).

        The result is left in ``r1`` by the emitted epilogue.
        """
        cpu = RiscCpu(program=assemble(self.assembly), memory=dict(memory or {}))
        cpu.registers[SPILL_BASE_REG] = SPILL_AREA_BASE
        for temp, value in inputs.items():
            location = self.locations[temp]
            if location.spilled:
                cpu.memory[SPILL_AREA_BASE + 4 * location.spill_slot] = (
                    value & 0xFFFFFFFF
                )
            else:
                cpu.registers[location.register] = value & 0xFFFFFFFF
        cpu.run()
        return cpu.registers[1], cpu


def _allocate(program: IrProgram) -> Tuple[Dict[int, Location], int]:
    """Linear-scan allocation over live ranges; returns locations and
    the number of spill slots used."""
    ranges = program.live_ranges()
    # Allocate in order of definition; free registers whose temp died.
    order = sorted(ranges, key=lambda t: ranges[t][0])
    free = list(ALLOCATABLE)
    active: List[Tuple[int, int]] = []   # (end, temp)
    locations: Dict[int, Location] = {}
    next_slot = 0
    for temp in order:
        start, end = ranges[temp]
        # Expire dead intervals.
        for active_end, active_temp in list(active):
            if active_end < start:
                active.remove((active_end, active_temp))
                register = locations[active_temp].register
                if register is not None:
                    free.append(register)
        if free:
            register = free.pop(0)
            locations[temp] = Location(register=register)
            active.append((end, temp))
            active.sort()
        else:
            # Spill the interval ending last (this temp or an active one).
            active.sort()
            longest_end, longest_temp = active[-1] if active else (-1, -1)
            if active and longest_end > end:
                # Steal the register from the longest-living active temp.
                stolen = locations[longest_temp].register
                locations[longest_temp] = Location(spill_slot=next_slot)
                next_slot += 1
                active.remove((longest_end, longest_temp))
                locations[temp] = Location(register=stolen)
                active.append((end, temp))
                active.sort()
            else:
                locations[temp] = Location(spill_slot=next_slot)
                next_slot += 1
    return locations, next_slot


class _Emitter:
    def __init__(self, locations: Dict[int, Location]) -> None:
        self.locations = locations
        self.lines: List[str] = []

    def emit(self, line: str) -> None:
        self.lines.append(line)

    def read(self, temp: int, scratch: int) -> int:
        """Return a register holding *temp*, reloading spills."""
        location = self.locations[temp]
        if not location.spilled:
            return location.register
        offset = 4 * location.spill_slot
        self.emit(f"lw r{scratch}, {offset}(r{SPILL_BASE_REG})")
        return scratch

    def write(self, temp: int, source_reg: int) -> None:
        """Store *source_reg* into temp's home location."""
        location = self.locations[temp]
        if location.spilled:
            offset = 4 * location.spill_slot
            self.emit(f"sw r{source_reg}, {offset}(r{SPILL_BASE_REG})")
        elif location.register != source_reg:
            self.emit(f"mov r{location.register}, r{source_reg}")

    def dest_reg(self, temp: int) -> int:
        location = self.locations[temp]
        return SCRATCH_A if location.spilled else location.register


_BINOPS = {"add": "add", "sub": "sub", "mul": "mul",
           "and": "and", "or": "or", "xor": "xor"}


def compile_to_risc(program: IrProgram) -> CompiledProgram:
    """Compile the IR program to RISC assembly."""
    program.validate()
    if program.output is None:
        raise IrError("cannot compile a program without an output")
    locations, spill_slots = _allocate(program)
    emitter = _Emitter(locations)
    for op in program.ops:
        _emit_op(emitter, op)
    # Epilogue: move the result into r1.
    result_reg = emitter.read(program.output, SCRATCH_A)
    if result_reg != 1:
        emitter.emit(f"mov r1, r{result_reg}")
    emitter.emit("halt")
    assembly = "\n".join(emitter.lines)
    return CompiledProgram(
        assembly=assembly,
        locations=locations,
        spill_slots=spill_slots,
        instructions=len(emitter.lines),
    )


def _emit_op(emitter: _Emitter, op: IrOp) -> None:
    if op.opcode == "const":
        dest = emitter.dest_reg(op.dst)
        emitter.emit(f"li r{dest}, {op.imm & 0xFFFFFFFF}")
        emitter.write(op.dst, dest)
    elif op.opcode in _BINOPS:
        a = emitter.read(op.srcs[0], SCRATCH_A)
        b = emitter.read(op.srcs[1], SCRATCH_B)
        dest = emitter.dest_reg(op.dst)
        emitter.emit(f"{_BINOPS[op.opcode]} r{dest}, r{a}, r{b}")
        emitter.write(op.dst, dest)
    elif op.opcode in ("shl", "shr"):
        a = emitter.read(op.srcs[0], SCRATCH_A)
        dest = emitter.dest_reg(op.dst)
        emitter.emit(f"{op.opcode} r{dest}, r{a}, {op.imm & 31}")
        emitter.write(op.dst, dest)
    elif op.opcode == "load":
        address = emitter.read(op.srcs[0], SCRATCH_A)
        dest = emitter.dest_reg(op.dst)
        emitter.emit(f"lw r{dest}, 0(r{address})")
        emitter.write(op.dst, dest)
    elif op.opcode == "store":
        address = emitter.read(op.srcs[0], SCRATCH_A)
        value = emitter.read(op.srcs[1], SCRATCH_B)
        emitter.emit(f"sw r{value}, 0(r{address})")
    else:  # pragma: no cover - OPCODES is closed
        raise IrError(f"unhandled opcode {op.opcode}")
