"""FlexWare-style retargetable embedded-software tools.

Section 8 of the paper cites "the development of the 'FlexWare'
high-performance embedded software development tools, which is quickly
retargetable to a range of domain-specific processors" [Paulin &
Santana, IEEE D&T 2002].  This package reproduces the core of such a
flow:

* :mod:`repro.flexware.ir` — a small three-address intermediate
  representation with a reference evaluator;
* :mod:`repro.flexware.codegen` — a code generator to the
  :mod:`repro.processors.risc` ISS (linear-scan register allocation
  with spilling), validated by executing the generated assembly;
* :mod:`repro.flexware.targets` — retargeting cost models: the same IR
  costed on a plain RISC, a MAC-fusing DSP, and an ASIP with custom
  instructions — the productivity-vs-efficiency spectrum of Figure 1
  driven from one source program.
"""

from repro.flexware.ir import IrError, IrOp, IrProgram, OPCODES
from repro.flexware.codegen import CompiledProgram, compile_to_risc
from repro.flexware.targets import (
    TARGETS,
    TargetCost,
    cost_on_target,
    retargeting_report,
)

__all__ = [
    "CompiledProgram",
    "IrError",
    "IrOp",
    "IrProgram",
    "OPCODES",
    "TARGETS",
    "TargetCost",
    "compile_to_risc",
    "cost_on_target",
    "retargeting_report",
]
