"""Retargeting cost models.

The FlexWare pitch is one source, many processors: this module costs
the same IR program on three targets —

* **gp_risc** — one instruction per IR op at the ISS's cycle costs;
* **dsp** — a MAC-fusing single-issue DSP: a ``mul`` whose only use is
  the immediately-following ``add`` fuses into one 1-cycle MAC, and
  loads dual-issue with arithmetic (the classic DSP datapath);
* **asip** — a configurable processor whose custom instruction
  collapses each load-load-mul-add tap of a filter kernel.

The report these produce is the Figure-1 spectrum driven bottom-up
from code rather than from catalog numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.flexware.ir import IrProgram

#: Per-IR-op cycle cost on the plain RISC (mirrors the ISS costs).
_RISC_COSTS = {
    "const": 1, "add": 1, "sub": 1, "and": 1, "or": 1, "xor": 1,
    "shl": 1, "shr": 1, "mul": 3, "load": 2, "store": 2,
}


@dataclass(frozen=True)
class TargetCost:
    """Cycle cost of one program on one target."""

    target: str
    cycles: float
    fused_macs: int = 0
    collapsed_taps: int = 0

    def speedup_vs(self, other: "TargetCost") -> float:
        if self.cycles <= 0:
            return float("inf")
        return other.cycles / self.cycles


def _risc_cost(program: IrProgram) -> TargetCost:
    cycles = sum(_RISC_COSTS[op.opcode] for op in program.ops)
    return TargetCost(target="gp_risc", cycles=float(cycles))


def _use_counts(program: IrProgram) -> Dict[int, int]:
    uses: Dict[int, int] = {}
    for op in program.ops:
        for src in op.srcs:
            uses[src] = uses.get(src, 0) + 1
    if program.output is not None:
        uses[program.output] = uses.get(program.output, 0) + 1
    return uses


def _dsp_cost(program: IrProgram) -> TargetCost:
    """MAC fusion + load/arith dual issue."""
    uses = _use_counts(program)
    cycles = 0.0
    fused = 0
    skip = set()
    ops = program.ops
    for index, op in enumerate(ops):
        if index in skip:
            continue
        nxt = ops[index + 1] if index + 1 < len(ops) else None
        if (
            op.opcode == "mul"
            and nxt is not None
            and nxt.opcode == "add"
            and op.dst in nxt.srcs
            and uses.get(op.dst, 0) == 1
        ):
            cycles += 1.0   # one MAC issue
            fused += 1
            skip.add(index + 1)
            continue
        if op.opcode == "load":
            # Dual issue: a load pairs with the next non-load op for free
            # half the time; model as half-cost loads.
            cycles += 1.0
            continue
        cycles += 1.0
    return TargetCost(target="dsp", cycles=cycles, fused_macs=fused)


def _asip_cost(program: IrProgram) -> TargetCost:
    """Custom 'tap' instruction: load+load+mul+add in 2 cycles.

    Pattern-matches the FIR tap shape (two loads feeding a mul feeding
    an accumulate); everything else runs at RISC cost.
    """
    ops = program.ops
    uses = _use_counts(program)
    cycles = 0.0
    taps = 0
    index = 0
    consumed = set()
    while index < len(ops):
        window = ops[index:index + 4]
        if (
            len(window) == 4
            and window[0].opcode == "load"
            and window[1].opcode == "load"
            and window[2].opcode == "mul"
            and window[3].opcode == "add"
            and set(window[2].srcs) == {window[0].dst, window[1].dst}
            and window[2].dst in window[3].srcs
            and uses.get(window[0].dst, 0) == 1
            and uses.get(window[1].dst, 0) == 1
            and uses.get(window[2].dst, 0) == 1
        ):
            cycles += 2.0
            taps += 1
            index += 4
            continue
        cycles += _RISC_COSTS[ops[index].opcode]
        index += 1
    return TargetCost(target="asip", cycles=cycles, collapsed_taps=taps)


TARGETS = {
    "gp_risc": _risc_cost,
    "dsp": _dsp_cost,
    "asip": _asip_cost,
}


def cost_on_target(program: IrProgram, target: str) -> TargetCost:
    """Cost *program* on a named target."""
    if target not in TARGETS:
        raise KeyError(
            f"unknown target {target!r}; known: {', '.join(sorted(TARGETS))}"
        )
    program.validate()
    return TARGETS[target](program)


def retargeting_report(program: IrProgram) -> List[dict]:
    """Cost the program on every target; rows sorted by cycles."""
    risc = cost_on_target(program, "gp_risc")
    rows = []
    for name in sorted(TARGETS):
        cost = cost_on_target(program, name)
        rows.append(
            {
                "target": name,
                "cycles": cost.cycles,
                "speedup_vs_risc": round(risc.cycles / cost.cycles, 2),
                "fused_macs": cost.fused_macs,
                "collapsed_taps": cost.collapsed_taps,
            }
        )
    rows.sort(key=lambda row: row["cycles"])
    return rows
