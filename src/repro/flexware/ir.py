"""The FlexWare-lite intermediate representation.

Straight-line three-address code over an unbounded set of virtual
registers ("temps"), 32-bit unsigned semantics.  Enough to express the
inner loops the paper's domains care about (filters, checksums, address
arithmetic) while keeping code generation honest: real register
pressure, real spilling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

MASK32 = 0xFFFFFFFF

#: opcode -> (number of temp operands, has immediate)
OPCODES: Dict[str, Tuple[int, bool]] = {
    "const": (0, True),    # dst = imm
    "add": (2, False),
    "sub": (2, False),
    "mul": (2, False),
    "and": (2, False),
    "or": (2, False),
    "xor": (2, False),
    "shl": (1, True),      # dst = src << imm
    "shr": (1, True),
    "load": (1, False),    # dst = mem[src]  (word-addressed)
    "store": (2, False),   # mem[src0] = src1; dst unused
}


class IrError(ValueError):
    """Malformed IR."""


@dataclass(frozen=True)
class IrOp:
    """One three-address operation."""

    opcode: str
    dst: Optional[int]                 # destination temp (None for store)
    srcs: Tuple[int, ...] = ()
    imm: int = 0

    def __post_init__(self) -> None:
        if self.opcode not in OPCODES:
            raise IrError(
                f"unknown opcode {self.opcode!r}; known: "
                f"{', '.join(sorted(OPCODES))}"
            )
        arity, _has_imm = OPCODES[self.opcode]
        if len(self.srcs) != arity:
            raise IrError(
                f"{self.opcode} takes {arity} sources, got {len(self.srcs)}"
            )
        if self.opcode == "store":
            if self.dst is not None:
                raise IrError("store has no destination")
        elif self.dst is None:
            raise IrError(f"{self.opcode} needs a destination temp")


@dataclass
class IrProgram:
    """A straight-line IR program.

    ``inputs`` lists temps that arrive pre-set from the caller;
    ``output`` is the temp whose final value the program returns.
    """

    ops: List[IrOp] = field(default_factory=list)
    inputs: List[int] = field(default_factory=list)
    output: Optional[int] = None
    _next_temp: int = 0

    # -- builder interface ---------------------------------------------------

    def new_input(self) -> int:
        temp = self._fresh()
        self.inputs.append(temp)
        return temp

    def emit(self, opcode: str, *srcs: int, imm: int = 0) -> int:
        """Append an op with a fresh destination; returns the dest temp."""
        dst = None if opcode == "store" else self._fresh()
        self.ops.append(IrOp(opcode, dst, tuple(srcs), imm))
        return dst if dst is not None else -1

    def set_output(self, temp: int) -> None:
        self.output = temp

    def _fresh(self) -> int:
        temp = self._next_temp
        self._next_temp += 1
        return temp

    # -- validation & analysis -----------------------------------------------

    def validate(self) -> None:
        """Check SSA-style def-before-use."""
        defined = set(self.inputs)
        for index, op in enumerate(self.ops):
            for src in op.srcs:
                if src not in defined:
                    raise IrError(
                        f"op {index} ({op.opcode}) uses undefined temp t{src}"
                    )
            if op.dst is not None:
                if op.dst in defined:
                    raise IrError(
                        f"op {index} redefines temp t{op.dst} (IR is SSA)"
                    )
                defined.add(op.dst)
        if self.output is not None and self.output not in defined:
            raise IrError(f"output temp t{self.output} never defined")

    def temp_count(self) -> int:
        return self._next_temp

    def live_ranges(self) -> Dict[int, Tuple[int, int]]:
        """(definition index, last use index) per temp.

        Inputs are defined at -1; the output is kept live to the end.
        """
        ranges: Dict[int, Tuple[int, int]] = {
            temp: (-1, -1) for temp in self.inputs
        }
        for index, op in enumerate(self.ops):
            if op.dst is not None:
                ranges[op.dst] = (index, index)
            for src in op.srcs:
                start, _end = ranges[src]
                ranges[src] = (start, index)
        if self.output is not None and self.output in ranges:
            start, _end = ranges[self.output]
            ranges[self.output] = (start, len(self.ops))
        return ranges

    # -- reference semantics ---------------------------------------------------

    def evaluate(
        self,
        inputs: Dict[int, int],
        memory: Optional[Dict[int, int]] = None,
    ) -> int:
        """Reference interpreter; returns the output temp's value."""
        self.validate()
        if set(inputs) != set(self.inputs):
            raise IrError(
                f"inputs {sorted(inputs)} do not match declared "
                f"{sorted(self.inputs)}"
            )
        if self.output is None:
            raise IrError("program has no output temp")
        memory = memory if memory is not None else {}
        values: Dict[int, int] = {t: v & MASK32 for t, v in inputs.items()}
        for op in self.ops:
            values_in = [values[src] for src in op.srcs]
            if op.opcode == "const":
                result = op.imm
            elif op.opcode == "add":
                result = values_in[0] + values_in[1]
            elif op.opcode == "sub":
                result = values_in[0] - values_in[1]
            elif op.opcode == "mul":
                result = values_in[0] * values_in[1]
            elif op.opcode == "and":
                result = values_in[0] & values_in[1]
            elif op.opcode == "or":
                result = values_in[0] | values_in[1]
            elif op.opcode == "xor":
                result = values_in[0] ^ values_in[1]
            elif op.opcode == "shl":
                result = values_in[0] << (op.imm & 31)
            elif op.opcode == "shr":
                result = (values_in[0] & MASK32) >> (op.imm & 31)
            elif op.opcode == "load":
                result = memory.get(values_in[0] & MASK32, 0)
            elif op.opcode == "store":
                memory[values_in[0] & MASK32] = values_in[1] & MASK32
                continue
            else:  # pragma: no cover - OPCODES is closed
                raise IrError(f"unhandled opcode {op.opcode}")
            values[op.dst] = result & MASK32
        return values[self.output]


def fir_ir(taps: int) -> IrProgram:
    """Build a *taps*-tap FIR inner loop (unrolled): the MAC-heavy shape
    the DSP target fuses."""
    if taps < 1:
        raise IrError(f"need >=1 tap, got {taps}")
    program = IrProgram()
    sample_base = program.new_input()
    coeff_base = program.new_input()
    acc = program.emit("const", imm=0)
    for k in range(taps):
        s_addr = program.emit("add", sample_base, program.emit("const", imm=k))
        c_addr = program.emit("add", coeff_base, program.emit("const", imm=k))
        sample = program.emit("load", s_addr)
        coeff = program.emit("load", c_addr)
        product = program.emit("mul", sample, coeff)
        acc = program.emit("add", acc, product)
    program.set_output(acc)
    program.validate()
    return program
