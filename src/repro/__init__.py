"""repro: a reproduction of "System-on-Chip Beyond the Nanometer Wall".

Magarshack & Paulin, DAC 2003 — the paper predicts two paradigm shifts
for nanometer-era SoC design: (1) division into four orthogonal
abstraction levels, and (2) domain-specific software-programmable
multi-processor platforms (large heterogeneous processor arrays +
network-on-chip + embedded FPGA), programmed through a high-level
distributed-object model with automated application-to-platform
mapping.

This library builds every system the paper describes:

* :mod:`repro.sim` — discrete-event simulation kernel;
* :mod:`repro.technology` — process scaling, wires, power, variation,
  yield;
* :mod:`repro.economics` — NRE, break-even, implementation
  alternatives, productivity, complexity growth, licensing;
* :mod:`repro.noc` — flit-level network-on-chip simulator (bus, ring,
  tree, mesh, torus, SPIN fat tree, crossbar) with OCP sockets;
* :mod:`repro.processors` — the Figure-1 processor spectrum, hardware
  multithreading, a RISC ISS, DSP/ASIP/eFPGA/hardwired-IP models,
  standard I/O;
* :mod:`repro.memory` — eSRAM/eDRAM/eFlash/external memory tradeoffs;
* :mod:`repro.platform` — the FPPA platform (Figure 2) and StepNP;
* :mod:`repro.dsoc` — the DSOC distributed-object programming model;
* :mod:`repro.mapping` — MultiFlex-style mapping and design-space
  exploration;
* :mod:`repro.apps` — IPv4 fast path, NPSE search engine, traffic
  generation, multimedia and wireless workloads;
* :mod:`repro.analysis` — one function per reproduced experiment
  (E1-E18, see DESIGN.md and EXPERIMENTS.md).

Quickstart
----------
>>> from repro.apps.stepnp_ipv4 import run_ipv4_on_stepnp
>>> result = run_ipv4_on_stepnp(num_pes=16, threads_per_pe=8,
...                             packets=500, extra_table_latency=100)
>>> result.line_rate_sustained
True
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "apps",
    "dsoc",
    "economics",
    "mapping",
    "memory",
    "noc",
    "platform",
    "processors",
    "sim",
    "technology",
]
