"""Non-recurring expense (NRE) models: mask sets and design effort.

Reproduces the Section 1 figures: mask-set NRE "multiplied by a factor
of ten in about three process technology generations, exceeding 1M$ for
current 90nm process"; design NRE "ranges from 10M$ to 100M$ for
today's complex 0.13 micron designs".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.technology.node import NODES, ProcessNode, node


def mask_nre_usd(process: ProcessNode | str) -> float:
    """Mask-set NRE in dollars for a node (label or object)."""
    if isinstance(process, str):
        process = node(process)
    return process.mask_set_cost_usd


def mask_nre_growth_per_generation(
    start: str = "350nm",
    end: str = "90nm",
) -> float:
    """Geometric-mean mask-NRE growth factor per generation.

    The paper's claim (x10 over three generations) corresponds to a
    per-generation factor of 10 ** (1/3) ~= 2.15.
    """
    ordered = sorted(NODES.values(), key=lambda n: -n.feature_nm)
    lo = node(end).feature_nm
    hi = node(start).feature_nm
    chain = [n for n in ordered if lo <= n.feature_nm <= hi]
    if len(chain) < 2:
        raise ValueError("need at least two nodes to compute growth")
    total = chain[-1].mask_set_cost_usd / chain[0].mask_set_cost_usd
    return total ** (1.0 / (len(chain) - 1))


@dataclass(frozen=True)
class DesignTeamModel:
    """Staffing cost model behind design NRE.

    Design NRE = transistors / productivity * loaded cost per man-year,
    plus EDA tooling, IP licensing and verification overheads expressed
    as multipliers on the staffing base.
    """

    loaded_cost_per_man_year_usd: float = 250_000.0
    verification_overhead: float = 1.0   # verification ~doubles effort
    eda_ip_overhead: float = 0.35        # tools + licensed IP

    def design_nre(self, transistors: float, productivity_tx_per_my: float) -> float:
        """Design NRE in dollars for a given design size and productivity."""
        if productivity_tx_per_my <= 0:
            raise ValueError("productivity must be positive")
        man_years = transistors / productivity_tx_per_my
        base = man_years * self.loaded_cost_per_man_year_usd
        return base * (1.0 + self.verification_overhead) * (
            1.0 + self.eda_ip_overhead
        )


def design_nre_usd(
    process: ProcessNode | str,
    transistors: float,
    reuse_fraction: float = 0.5,
    team: DesignTeamModel | None = None,
) -> float:
    """Design NRE for a chip of *transistors* at a node.

    *reuse_fraction* of the logic comes from reused IP and costs ~15% of
    new design; the rest is designed from scratch at the node's
    productivity (see :mod:`repro.economics.productivity`).

    Calibrated so a ~100M-transistor 130 nm SoC lands in the paper's
    $10M-$100M design-NRE band.
    """
    from repro.economics.productivity import design_productivity

    if isinstance(process, str):
        process = node(process)
    if not 0.0 <= reuse_fraction <= 1.0:
        raise ValueError(f"reuse fraction must be in [0,1], got {reuse_fraction}")
    team = team or DesignTeamModel()
    productivity = design_productivity(process)
    new_tx = transistors * (1.0 - reuse_fraction)
    reused_tx = transistors * reuse_fraction
    return team.design_nre(new_tx, productivity) + 0.15 * team.design_nre(
        reused_tx, productivity
    )


def total_nre_usd(
    process: ProcessNode | str,
    transistors: float,
    reuse_fraction: float = 0.5,
    respins: int = 1,
) -> float:
    """Mask + design NRE, with *respins* additional mask sets."""
    if isinstance(process, str):
        process = node(process)
    if respins < 0:
        raise ValueError(f"negative respin count {respins}")
    masks = mask_nre_usd(process) * (1 + respins)
    return masks + design_nre_usd(process, transistors, reuse_fraction)


def mask_nre_series(labels: list[str] | None = None) -> list[tuple[str, float]]:
    """(node, mask NRE) series across the database, oldest first."""
    if labels is None:
        labels = sorted(NODES, key=lambda n: -NODES[n].feature_nm)
    return [(label, mask_nre_usd(label)) for label in labels]


def amortized_nre_per_unit(total_nre: float, volume: int) -> float:
    """NRE share carried by each unit at a production volume."""
    if volume <= 0:
        raise ValueError(f"volume must be positive, got {volume}")
    return total_nre / volume
