"""Design productivity trends.

Section 2 argues that "for 90nm technologies and beyond, the design
productivity (transistors designed per man-year) will actually decline
due to the new deep submicron effects".  We model productivity as a
reuse/tooling-driven improvement multiplied by a DSM drag term that
grows below 130 nm, producing the predicted peak-and-decline shape
(experiment E6).
"""

from __future__ import annotations

import math

from repro.technology.node import NODES, ProcessNode, node
from repro.technology.variation import gate_sigma_fraction

#: Transistors per man-year at the 350 nm reference node.
BASE_PRODUCTIVITY_TX_PER_MY = 300_000.0

#: Compound productivity improvement per year from tools/reuse (pre-DSM).
TOOL_IMPROVEMENT_PER_YEAR = 0.21

#: Reference year of the base productivity figure.
BASE_YEAR = 1995


def tool_productivity(process: ProcessNode) -> float:
    """Productivity from tool/reuse improvement alone (no DSM drag)."""
    years = process.year - BASE_YEAR
    return BASE_PRODUCTIVITY_TX_PER_MY * (1.0 + TOOL_IMPROVEMENT_PER_YEAR) ** years


def dsm_drag(process: ProcessNode) -> float:
    """Multiplicative productivity loss from deep-submicron effects.

    Signal integrity, OCV margining, power closure and DFT effort all
    scale with variation; we tie the drag to the node's gate-delay
    sigma so it is negligible at 250 nm and severe below 90 nm.
    """
    sigma = gate_sigma_fraction(process)
    # Calibrated so productivity peaks at 130 nm and declines from 90 nm
    # onward, matching the paper's Section 2 prediction.
    return math.exp(-((sigma / 0.048) ** 2) / 2.0)


def design_productivity(process: ProcessNode | str) -> float:
    """Transistors designed per man-year at a node (new logic, no reuse)."""
    if isinstance(process, str):
        process = node(process)
    return tool_productivity(process) * dsm_drag(process)


def productivity_series() -> list[tuple[str, float]]:
    """(node, productivity) across the database, oldest first."""
    ordered = sorted(NODES.values(), key=lambda n: -n.feature_nm)
    return [(n.name, design_productivity(n)) for n in ordered]


def productivity_peak_node() -> str:
    """Node label at which productivity peaks before the DSM decline."""
    series = productivity_series()
    return max(series, key=lambda pair: pair[1])[0]


def team_size_for_design(
    process: ProcessNode | str,
    transistors: float,
    schedule_years: float = 2.0,
    reuse_fraction: float = 0.5,
) -> float:
    """Engineers needed to design a chip on a schedule.

    Reused IP is integrated at ~15% of new-design effort.
    """
    if isinstance(process, str):
        process = node(process)
    if schedule_years <= 0:
        raise ValueError(f"schedule must be positive, got {schedule_years}")
    if not 0.0 <= reuse_fraction <= 1.0:
        raise ValueError(f"reuse fraction must be in [0,1], got {reuse_fraction}")
    productivity = design_productivity(process)
    effective_tx = transistors * ((1.0 - reuse_fraction) + 0.15 * reuse_fraction)
    man_years = effective_tx / productivity
    return man_years / schedule_years


def productivity_gap(process: ProcessNode | str, die_area_mm2: float = 100.0) -> float:
    """Ratio of transistors available on a die to what a 50-person,
    2-year project can design — the "design gap".

    The growth of this ratio with scaling is the paper's core motivation
    for platform reuse and software programmability.
    """
    if isinstance(process, str):
        process = node(process)
    available = process.transistors_for_area(die_area_mm2)
    designable = design_productivity(process) * 50 * 2
    return available / designable
