"""SoC economics models.

Section 1 of the paper builds its case on manufacturing and design
non-recurring expenses (NRE): mask sets exceeding $1M at 90 nm (x10 in
three generations), design NRE of $10M-$100M, and the resulting
break-even volumes that "preclude the development of specialized ASICs"
for small and medium players.  This package models those economics:

* :mod:`repro.economics.nre` — mask and design NRE per node;
* :mod:`repro.economics.breakeven` — volume break-even analysis;
* :mod:`repro.economics.alternatives` — the NRE-flexibility continuum
  (ASIC, structured array, FPGA, SiP, MP-SoC platform);
* :mod:`repro.economics.productivity` — design productivity trends and
  the sub-90 nm decline the paper predicts;
* :mod:`repro.economics.complexity` — hardware vs. embedded-software
  complexity growth (56% vs. 140% per year);
* :mod:`repro.economics.licensing` — software license/royalty cost vs.
  silicon cost for consumer multimedia SoCs.
"""

from repro.economics.nre import (
    DesignTeamModel,
    design_nre_usd,
    mask_nre_usd,
    mask_nre_growth_per_generation,
    total_nre_usd,
)
from repro.economics.breakeven import (
    BreakEven,
    break_even_volume,
    profit_per_unit,
    required_volume_for_nre,
)
from repro.economics.alternatives import (
    Alternative,
    ImplementationChoice,
    STANDARD_ALTERNATIVES,
    best_alternative,
    crossover_volume,
    unit_cost,
    total_cost,
)
from repro.economics.productivity import (
    design_productivity,
    productivity_peak_node,
    team_size_for_design,
)
from repro.economics.complexity import (
    hw_complexity,
    sw_complexity,
    sw_overtakes_hw_year,
    risc_equivalents,
)
from repro.economics.licensing import (
    LicenseStack,
    CONSUMER_MULTIMEDIA_STACK,
    license_vs_silicon,
)

__all__ = [
    "Alternative",
    "BreakEven",
    "CONSUMER_MULTIMEDIA_STACK",
    "DesignTeamModel",
    "ImplementationChoice",
    "LicenseStack",
    "STANDARD_ALTERNATIVES",
    "best_alternative",
    "break_even_volume",
    "crossover_volume",
    "design_nre_usd",
    "design_productivity",
    "hw_complexity",
    "license_vs_silicon",
    "mask_nre_growth_per_generation",
    "mask_nre_usd",
    "productivity_peak_node",
    "profit_per_unit",
    "required_volume_for_nre",
    "risc_equivalents",
    "sw_complexity",
    "sw_overtakes_hw_year",
    "team_size_for_design",
    "total_cost",
    "total_nre_usd",
    "unit_cost",
]
