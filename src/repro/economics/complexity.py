"""Hardware vs. embedded-software complexity growth.

Section 6: "The growth of hardware complexity in SoC's has tracked
Moore's law, with a resulting growth of 56% in transistor count per
year.  However, industry studies show that the complexity of embedded
S/W is rising at a staggering 140% per year.  In many leading SoC's
today, the embedded S/W development effort has surpassed that of the
H/W design effort."  Experiment E7 regenerates those curves and finds
the crossover year; E4 computes the "1000 RISC processors on a die"
figure.
"""

from __future__ import annotations

import math

from repro.technology.node import ProcessNode, node
from repro.technology.scaling import (
    MOORE_TRANSISTOR_GROWTH,
    SOFTWARE_COMPLEXITY_GROWTH,
)

#: Reference year at which the normalized complexity curves are anchored.
REFERENCE_YEAR = 1997

#: Logic transistors of a compact synthesizable 32-bit RISC core
#: (ARM7/SH-class integer core, ~25-30K gates * ~4 transistors/gate).
RISC32_LOGIC_TRANSISTORS = 100_000.0

#: Ratio of SW to HW development effort at the reference year (SW was a
#: clear minority of SoC effort in the mid-90s).
SW_HW_EFFORT_RATIO_AT_REFERENCE = 0.10


def hw_complexity(year: float, reference_year: float = REFERENCE_YEAR) -> float:
    """Relative hardware complexity (transistors), 1.0 at the reference."""
    return (1.0 + MOORE_TRANSISTOR_GROWTH) ** (year - reference_year)


def sw_complexity(year: float, reference_year: float = REFERENCE_YEAR) -> float:
    """Relative embedded-software complexity, 1.0 at the reference."""
    return (1.0 + SOFTWARE_COMPLEXITY_GROWTH) ** (year - reference_year)


def sw_effort(year: float, reference_year: float = REFERENCE_YEAR) -> float:
    """SW development effort relative to HW effort at the reference.

    Starts at :data:`SW_HW_EFFORT_RATIO_AT_REFERENCE` and compounds at
    the software complexity growth rate.
    """
    return SW_HW_EFFORT_RATIO_AT_REFERENCE * sw_complexity(year, reference_year)


def sw_overtakes_hw_year(reference_year: float = REFERENCE_YEAR) -> float:
    """Year at which SW development effort surpasses HW design effort.

    HW effort is assumed to grow with transistor count divided by
    (modest) productivity gains; solving
    ``r0 * (1+g_sw)^t == (1+g_hw_effort)^t`` for t.
    """
    # HW design effort grows slower than transistor count thanks to reuse:
    # net ~20%/year effort growth is the industry rule of thumb.
    hw_effort_growth = 0.20
    r0 = SW_HW_EFFORT_RATIO_AT_REFERENCE
    g_ratio = (1.0 + SOFTWARE_COMPLEXITY_GROWTH) / (1.0 + hw_effort_growth)
    years = -math.log(r0) / math.log(g_ratio)
    return reference_year + years


def complexity_table(
    start_year: int = 1997,
    end_year: int = 2008,
) -> list[dict[str, float]]:
    """Year-by-year HW and SW complexity and effort-ratio rows."""
    rows = []
    for year in range(start_year, end_year + 1):
        rows.append(
            {
                "year": year,
                "hw_complexity": hw_complexity(year),
                "sw_complexity": sw_complexity(year),
                "sw_over_hw_effort": sw_effort(year) / (1.20 ** (year - REFERENCE_YEAR)),
            }
        )
    return rows


def risc_equivalents(
    transistors: float,
    core_transistors: float = RISC32_LOGIC_TRANSISTORS,
) -> float:
    """How many 32-bit RISC cores the logic budget could hold.

    The paper: "over 100 million transistors — enough to theoretically
    place the logic of over one thousand 32 bit RISC processors on a
    die".  100e6 / 100e3 = 1000.
    """
    if core_transistors <= 0:
        raise ValueError(f"core size must be positive, got {core_transistors}")
    return transistors / core_transistors


def risc_equivalents_at_node(
    process: ProcessNode | str,
    die_area_mm2: float = 100.0,
) -> float:
    """RISC-core equivalents for a full die at a node."""
    if isinstance(process, str):
        process = node(process)
    return risc_equivalents(process.transistors_for_area(die_area_mm2))
