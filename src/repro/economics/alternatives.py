"""The NRE-flexibility continuum of implementation alternatives.

Section 1 places implementation styles on a continuum: full-custom
ASIC/SoC (highest NRE, lowest unit cost and power), gate-array-style
fabrics with top-metal-only configuration (intermediate), FPGAs (no
mask NRE but ~10x unit cost and power), and systems-in-package.  The
paper argues each has a volume band where it wins; experiment E5 maps
those bands and E12 applies the same penalty arithmetic to embedded
FPGA fabric shares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.economics.nre import design_nre_usd, mask_nre_usd
from repro.technology.node import ProcessNode, node
from repro.technology.yieldmodel import die_cost_usd


class ImplementationChoice(Enum):
    """Styles on the paper's NRE-flexibility continuum."""

    ASIC = "asic"
    STRUCTURED_ARRAY = "structured_array"   # top-metal-configured gate array
    FPGA = "fpga"
    SIP = "sip"                             # system-in-package, multi-die
    MPSOC_PLATFORM = "mpsoc_platform"       # S/W-programmable platform


@dataclass(frozen=True)
class Alternative:
    """Cost structure of one implementation style.

    Attributes
    ----------
    choice:
        Which style this is.
    mask_nre_factor:
        Fraction of the full mask-set NRE this style pays (a structured
        array only pays for the configured metal layers; an FPGA pays
        none).
    design_nre_factor:
        Fraction of full design NRE (programmable targets skip physical
        design; platform derivatives reuse most of the design).
    unit_cost_factor:
        Silicon cost multiplier vs. the ASIC die (the paper cites ~10x
        for FPGA).
    power_factor:
        Power multiplier vs. the ASIC (also ~10x for FPGA).
    flexibility:
        Qualitative 0-1 score: how much of the function can change after
        manufacturing.
    """

    choice: ImplementationChoice
    mask_nre_factor: float
    design_nre_factor: float
    unit_cost_factor: float
    power_factor: float
    flexibility: float

    def nre(self, process: ProcessNode, transistors: float) -> float:
        """Total NRE of this style for a design at a node."""
        return self.mask_nre_factor * mask_nre_usd(process) + (
            self.design_nre_factor * design_nre_usd(process, transistors)
        )

    def unit(self, process: ProcessNode, die_area_mm2: float) -> float:
        """Unit silicon cost of this style."""
        return self.unit_cost_factor * die_cost_usd(process, die_area_mm2)


#: The paper's continuum with literature-typical factors.  FPGA carries the
#: 10x unit cost/power penalty cited in Sections 1 and 6.3.
STANDARD_ALTERNATIVES: dict[ImplementationChoice, Alternative] = {
    a.choice: a
    for a in [
        Alternative(ImplementationChoice.ASIC, 1.00, 1.00, 1.0, 1.0, 0.05),
        Alternative(ImplementationChoice.STRUCTURED_ARRAY, 0.25, 0.50, 1.8, 1.6, 0.15),
        Alternative(ImplementationChoice.FPGA, 0.00, 0.15, 10.0, 10.0, 0.95),
        Alternative(ImplementationChoice.SIP, 0.60, 0.80, 1.3, 1.1, 0.20),
        Alternative(ImplementationChoice.MPSOC_PLATFORM, 0.10, 0.25, 1.4, 1.5, 0.80),
    ]
}


def unit_cost(
    alternative: Alternative,
    process: ProcessNode | str,
    die_area_mm2: float = 80.0,
) -> float:
    """Per-unit silicon cost of an alternative."""
    if isinstance(process, str):
        process = node(process)
    return alternative.unit(process, die_area_mm2)


def total_cost(
    alternative: Alternative,
    process: ProcessNode | str,
    volume: int,
    transistors: float = 50e6,
    die_area_mm2: float = 80.0,
) -> float:
    """NRE + volume * unit cost for an alternative at a volume."""
    if isinstance(process, str):
        process = node(process)
    if volume < 0:
        raise ValueError(f"negative volume {volume}")
    return alternative.nre(process, transistors) + volume * alternative.unit(
        process, die_area_mm2
    )


def best_alternative(
    process: ProcessNode | str,
    volume: int,
    transistors: float = 50e6,
    die_area_mm2: float = 80.0,
    candidates: dict[ImplementationChoice, Alternative] | None = None,
) -> tuple[ImplementationChoice, float]:
    """Cheapest style at a volume; returns (choice, total cost)."""
    candidates = candidates or STANDARD_ALTERNATIVES
    costs = {
        choice: total_cost(alt, process, volume, transistors, die_area_mm2)
        for choice, alt in candidates.items()
    }
    winner = min(costs, key=costs.get)
    return winner, costs[winner]


def crossover_volume(
    low_nre: Alternative,
    high_nre: Alternative,
    process: ProcessNode | str,
    transistors: float = 50e6,
    die_area_mm2: float = 80.0,
) -> float:
    """Volume where the high-NRE/low-unit-cost style starts winning.

    Solves ``NRE_a + v*unit_a == NRE_b + v*unit_b``.  Returns ``inf``
    when the high-NRE style never catches up (its unit cost is not
    lower).
    """
    if isinstance(process, str):
        process = node(process)
    nre_low = low_nre.nre(process, transistors)
    nre_high = high_nre.nre(process, transistors)
    unit_low = low_nre.unit(process, die_area_mm2)
    unit_high = high_nre.unit(process, die_area_mm2)
    if unit_high >= unit_low:
        return math.inf
    return (nre_high - nre_low) / (unit_low - unit_high)


def efpga_partition_cost(
    process: ProcessNode | str,
    total_gates: float,
    efpga_function_share: float,
    asic_cost_per_gate: float = 1.0,
    efpga_penalty: float = 10.0,
) -> dict[str, float]:
    """Cost/power of mapping a share of functionality onto eFPGA fabric.

    The paper (Sec. 6.3) limits eFPGA to "less than 5% of the IC
    functionality" because of the "10X cost and power penalty".  Here a
    function mapped to eFPGA costs *efpga_penalty* times its hardwired
    cost, and the returned dict exposes the overhead ratio experiment
    E12 sweeps.
    """
    if isinstance(process, str):
        process = node(process)
    if not 0.0 <= efpga_function_share <= 1.0:
        raise ValueError(
            f"eFPGA share must be in [0,1], got {efpga_function_share}"
        )
    hard_gates = total_gates * (1.0 - efpga_function_share)
    soft_gates = total_gates * efpga_function_share
    cost = hard_gates * asic_cost_per_gate + soft_gates * asic_cost_per_gate * (
        efpga_penalty
    )
    baseline = total_gates * asic_cost_per_gate
    return {
        "cost": cost,
        "baseline_cost": baseline,
        "overhead_ratio": cost / baseline,
        "area_share_efpga": soft_gates * efpga_penalty / (
            hard_gates + soft_gates * efpga_penalty
        ),
    }
