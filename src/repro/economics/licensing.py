"""Software licensing vs. silicon cost.

Section 6: "in consumer multimedia SoC products, such as set-top box,
DVD, and audio, the actual cost of licenses and royalties for the
application S/W (O/S, audio and video licenses) largely exceeds the
chip manufacturing cost in many applications."  This module models a
per-unit license stack against the manufactured die cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.technology.node import ProcessNode, node
from repro.technology.yieldmodel import die_cost_usd


@dataclass(frozen=True)
class LicenseItem:
    """One per-unit royalty line item."""

    name: str
    royalty_usd: float

    def __post_init__(self) -> None:
        if self.royalty_usd < 0:
            raise ValueError(f"negative royalty for {self.name!r}")


@dataclass(frozen=True)
class LicenseStack:
    """A bundle of per-unit software licenses and royalties."""

    name: str
    items: tuple[LicenseItem, ...] = field(default_factory=tuple)

    @property
    def per_unit_usd(self) -> float:
        """Total royalty paid per manufactured unit."""
        return sum(item.royalty_usd for item in self.items)

    def breakdown(self) -> dict[str, float]:
        return {item.name: item.royalty_usd for item in self.items}


#: A typical early-2000s consumer multimedia (set-top box / DVD) stack:
#: MPEG-2/4 video, Dolby + MP3 audio, CSS/CA security, embedded OS + stack.
CONSUMER_MULTIMEDIA_STACK = LicenseStack(
    name="consumer_multimedia",
    items=(
        LicenseItem("mpeg_video_codec", 2.50),
        LicenseItem("dolby_audio", 1.00),
        LicenseItem("mp3_audio", 0.75),
        LicenseItem("content_security", 1.25),
        LicenseItem("embedded_os", 1.50),
        LicenseItem("middleware_stack", 1.00),
    ),
)


def license_vs_silicon(
    process: ProcessNode | str,
    die_area_mm2: float = 60.0,
    stack: LicenseStack = CONSUMER_MULTIMEDIA_STACK,
    package_test_usd: float = 1.0,
) -> dict[str, float]:
    """Compare per-unit license cost to per-unit silicon cost.

    Returns the ratio the paper claims exceeds 1.0 for consumer
    multimedia.
    """
    if isinstance(process, str):
        process = node(process)
    silicon = die_cost_usd(process, die_area_mm2) + package_test_usd
    licenses = stack.per_unit_usd
    return {
        "silicon_cost_usd": silicon,
        "license_cost_usd": licenses,
        "license_over_silicon": licenses / silicon,
    }
