"""Break-even volume analysis.

Reproduces the paper's Section 1 arithmetic: "for a chip sold at a price
of $5, and a profit margin of 20%, this implies selling over one million
chips simply to pay for the mask set NRE", and with design NRE of
$10M-$100M, "volumes of 10 to 100 million chips to break even".
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.economics.nre import design_nre_usd, mask_nre_usd
from repro.technology.node import ProcessNode, node


def profit_per_unit(price_usd: float, margin: float) -> float:
    """Gross profit per chip at a selling price and margin fraction."""
    if price_usd <= 0:
        raise ValueError(f"price must be positive, got {price_usd}")
    if not 0.0 < margin <= 1.0:
        raise ValueError(f"margin must be in (0,1], got {margin}")
    return price_usd * margin


def required_volume_for_nre(
    nre_usd: float,
    price_usd: float,
    margin: float,
) -> int:
    """Units that must be sold so cumulative profit covers the NRE."""
    if nre_usd < 0:
        raise ValueError(f"negative NRE {nre_usd}")
    per_unit = profit_per_unit(price_usd, margin)
    return math.ceil(nre_usd / per_unit)


def break_even_volume(
    process: ProcessNode | str,
    price_usd: float = 5.0,
    margin: float = 0.20,
    transistors: float = 100e6,
    include_design: bool = True,
    reuse_fraction: float = 0.5,
) -> int:
    """Break-even volume for a chip at the paper's default economics."""
    if isinstance(process, str):
        process = node(process)
    nre = mask_nre_usd(process)
    if include_design:
        nre += design_nre_usd(process, transistors, reuse_fraction)
    return required_volume_for_nre(nre, price_usd, margin)


@dataclass(frozen=True)
class BreakEven:
    """Full break-even breakdown for one product scenario."""

    process_name: str
    price_usd: float
    margin: float
    mask_nre: float
    design_nre: float
    mask_only_volume: int
    total_volume: int

    @classmethod
    def analyze(
        cls,
        process: ProcessNode | str,
        price_usd: float = 5.0,
        margin: float = 0.20,
        transistors: float = 100e6,
        reuse_fraction: float = 0.5,
    ) -> "BreakEven":
        if isinstance(process, str):
            process = node(process)
        mask = mask_nre_usd(process)
        design = design_nre_usd(process, transistors, reuse_fraction)
        return cls(
            process_name=process.name,
            price_usd=price_usd,
            margin=margin,
            mask_nre=mask,
            design_nre=design,
            mask_only_volume=required_volume_for_nre(mask, price_usd, margin),
            total_volume=required_volume_for_nre(mask + design, price_usd, margin),
        )

    def as_row(self) -> dict[str, float]:
        """Flat dict for tabular reporting."""
        return {
            "node": self.process_name,
            "price_usd": self.price_usd,
            "margin": self.margin,
            "mask_nre_usd": self.mask_nre,
            "design_nre_usd": self.design_nre,
            "mask_only_volume": self.mask_only_volume,
            "total_volume": self.total_volume,
        }


def platform_amortization(
    total_nre: float,
    variants: int,
    derivative_cost_fraction: float = 0.15,
) -> dict[str, float]:
    """NRE per product when a platform is reused across *variants*.

    The paper's core economic argument for platforms: "a SoC design
    platform needs to be amortized over many variants and generations of
    a product family".  Each derivative costs only a fraction of the
    platform NRE.
    """
    if variants < 1:
        raise ValueError(f"need at least one variant, got {variants}")
    if not 0.0 <= derivative_cost_fraction <= 1.0:
        raise ValueError(
            f"derivative cost fraction must be in [0,1], got "
            f"{derivative_cost_fraction}"
        )
    derivatives = variants - 1
    total = total_nre * (1.0 + derivatives * derivative_cost_fraction)
    return {
        "total_nre": total,
        "nre_per_product": total / variants,
        "saving_vs_independent": 1.0 - total / (total_nre * variants),
    }
