"""Discrete-event simulation kernel.

This package is the substrate for every cycle-level model in the
reproduction: the network-on-chip simulator, the multithreaded processor
models, and the StepNP/FPPA platform simulations are all built on it.

The kernel follows the classic process-interaction style: model code is
written as Python generator functions that ``yield`` simulation commands
(:class:`Timeout`, :class:`Event`, resource requests).  The
:class:`Simulator` owns the event heap and advances virtual time.

Example
-------
>>> from repro.sim import Simulator, Timeout
>>> sim = Simulator()
>>> log = []
>>> def proc(sim):
...     yield Timeout(5)
...     log.append(sim.now)
>>> _ = sim.spawn(proc(sim))
>>> sim.run()
>>> log
[5.0]
"""

from repro.sim.core import Event, Simulator, Timeout
from repro.sim.process import Process, ProcessKilled
from repro.sim.resources import Resource, Store
from repro.sim.channel import Channel, LatencyChannel
from repro.sim.stats import Counter, Histogram, Sampler, TimeWeighted
from repro.sim.rng import RandomStreams

__all__ = [
    "Channel",
    "Counter",
    "Event",
    "Histogram",
    "LatencyChannel",
    "Process",
    "ProcessKilled",
    "RandomStreams",
    "Resource",
    "Sampler",
    "Simulator",
    "Store",
    "TimeWeighted",
    "Timeout",
]
