"""Shared resources for simulation processes.

:class:`Resource` models a counted resource (e.g. a bus, a memory port, a
processor issue slot) with FIFO queueing.  :class:`Store` is a FIFO of
items with blocking get/put, used for message queues and packet buffers.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.sim.core import Event, SimulationError, Simulator, Timeout


class Resource:
    """A resource with integer capacity and FIFO request queue.

    Usage inside a process::

        grant = resource.request()
        yield grant            # waits until a slot is free
        ...                    # critical section
        resource.release()

    The :meth:`use` helper wraps request/hold/release into one generator.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"Resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "resource"
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # occupancy statistics
        self._busy_time = 0.0
        self._last_change = 0.0
        self._grants = 0

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of pending (ungranted) requests."""
        return len(self._waiters)

    @property
    def grants(self) -> int:
        """Total number of requests granted so far."""
        return self._grants

    def request(self) -> Event:
        """Return an event that succeeds when a slot is granted."""
        event = self.sim.event(f"{self.name}.request")
        if self._in_use < self.capacity:
            self._grant(event)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Free one slot, granting the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        self._account()
        self._in_use -= 1
        if self._waiters:
            self._grant(self._waiters.popleft())

    def use(self, hold_time: float) -> Generator[Any, Any, None]:
        """Generator helper: acquire, hold for *hold_time*, release."""
        yield self.request()
        try:
            yield Timeout(hold_time)
        finally:
            self.release()

    def utilization(self, horizon: Optional[float] = None) -> float:
        """Fraction of busy slot-time over the observation window."""
        now = self.sim.now if horizon is None else horizon
        if now <= 0:
            return 0.0
        busy = self._busy_time + self._in_use * (now - self._last_change)
        return busy / (now * self.capacity)

    def _grant(self, event: Event) -> None:
        self._account()
        self._in_use += 1
        self._grants += 1
        event.succeed(self)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now


class Store:
    """Unbounded-or-bounded FIFO store with blocking get/put.

    ``yield store.get()`` suspends until an item is available and resumes
    with the item as the yielded value.  ``yield store.put(item)``
    suspends while the store is at capacity (bounded stores only).
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        name: str = "",
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"Store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "store"
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()
        self._peak = 0
        self._puts = 0
        self._gets = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def peak_occupancy(self) -> int:
        """Maximum number of items ever held at once."""
        return self._peak

    @property
    def total_puts(self) -> int:
        return self._puts

    @property
    def total_gets(self) -> int:
        return self._gets

    def put(self, item: Any) -> Event:
        """Return an event that succeeds once *item* is stored."""
        event = self.sim.event(f"{self.name}.put")
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            self._puts += 1
            self._gets += 1
            getter.succeed(item)
            event.succeed(None)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._store(item)
            event.succeed(None)
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if self._getters:
            getter = self._getters.popleft()
            self._puts += 1
            self._gets += 1
            getter.succeed(item)
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._store(item)
        return True

    def get(self) -> Event:
        """Return an event that succeeds with the next item."""
        event = self.sim.event(f"{self.name}.get")
        if self._items:
            item = self._items.popleft()
            self._gets += 1
            event.succeed(item)
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns ``(ok, item)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self._gets += 1
        self._admit_putter()
        return True, item

    def _store(self, item: Any) -> None:
        self._items.append(item)
        self._puts += 1
        self._peak = max(self._peak, len(self._items))

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            event, item = self._putters.popleft()
            self._store(item)
            event.succeed(None)
