"""Core of the discrete-event simulation kernel.

The :class:`Simulator` owns a binary-heap event queue keyed on
``(time, priority, sequence)``.  Model behaviour is expressed as generator
functions ("processes") that yield :class:`Timeout` or :class:`Event`
instances; the kernel resumes a process when the yielded condition fires.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Event:
    """A one-shot condition that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    triggers it, scheduling every waiting callback at the current
    simulation time.  Triggering twice is an error — events are one-shot
    by design, which keeps causality easy to reason about.

    Parameters
    ----------
    sim:
        The owning simulator.  Events can only be triggered through the
        simulator they belong to.
    name:
        Optional debug label.
    """

    __slots__ = (
        "sim", "name", "callbacks", "_value", "_ok", "_triggered", "_fired"
    )

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.callbacks: list[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        #: callbacks detached at trigger time, dispatched by the kernel.
        self._fired: list[Callable[["Event"], None]] = []

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError(f"event {self.name!r} not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The payload passed to :meth:`succeed` / :meth:`fail`."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, waking all waiters."""
        self._trigger(value, ok=True)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive *exception*."""
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail() requires an exception instance")
        self._trigger(exception, ok=False)
        return self

    def _trigger(self, value: Any, ok: bool) -> None:
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        self._ok = ok
        # Detach the waiter list now (callbacks added after triggering
        # never fire, as before) and let the kernel dispatch the event
        # itself — no per-trigger closure allocation.
        self._fired = self.callbacks
        self.callbacks = []
        self.sim._schedule_event(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"


class Timeout:
    """A relative delay command yielded by processes.

    ``yield Timeout(5)`` suspends the yielding process for five time
    units.  A negative delay is rejected: simulated time is monotonic.
    """

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative Timeout delay {delay!r}")
        self.delay = float(delay)
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timeout({self.delay})"


class Simulator:
    """Event-driven simulator with a monotonic virtual clock.

    The public surface is deliberately small:

    * :meth:`spawn` turns a generator into a running process.
    * :meth:`run` executes events until the horizon or queue exhaustion.
    * :meth:`event` creates a fresh :class:`Event` bound to this kernel.
    * :meth:`schedule` runs an arbitrary callback at a future time.

    Determinism: two events at the same timestamp fire in the order they
    were scheduled (FIFO tiebreak via a sequence counter), so a seeded
    simulation replays identically.
    """

    def __init__(self) -> None:
        self._now = 0.0
        # Entries are (time, priority, seq, item); item is a zero-arg
        # callback or a triggered Event (dispatched to its waiters).
        self._queue: list[tuple[float, int, int, Any]] = []
        self._seq = itertools.count()
        self._processes: list[Any] = []
        self._event_count = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total number of scheduled callbacks executed so far."""
        return self._event_count

    def event(self, name: str = "") -> Event:
        """Create a new pending :class:`Event` owned by this simulator."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Convenience constructor mirroring :class:`Timeout`."""
        return Timeout(delay, value)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> None:
        """Run *callback* after *delay* time units.

        Lower *priority* values fire first among same-time events.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._seq), callback)
        )

    def _schedule_event(self, event: Event) -> None:
        """Queue a just-triggered event for dispatch at time *now*.

        The event object itself is pushed; :meth:`run` recognizes it
        and calls its detached waiter callbacks, avoiding the closure
        allocation a callback-only queue would force on every trigger.
        """
        heapq.heappush(self._queue, (self._now, 0, next(self._seq), event))

    def spawn(
        self,
        generator: Generator[Any, Any, Any],
        name: str = "",
    ) -> "Process":
        """Start a new process from *generator* and return its handle."""
        from repro.sim.process import Process

        proc = Process(self, generator, name=name)
        self._processes.append(proc)
        return proc

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains or time reaches *until*.

        Returns the simulation time at which execution stopped.  When an
        *until* horizon is given the clock is advanced exactly to it, so
        back-to-back ``run(until=...)`` calls compose.
        """
        queue = self._queue
        pop = heapq.heappop
        while queue:
            time = queue[0][0]
            if until is not None and time > until:
                self._now = float(until)
                return self._now
            if time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event scheduled in the past")
            self._now = time
            # Batch every same-time wakeup: one horizon/clock update
            # per timestamp instead of one per entry.  Entries pushed
            # at `time` from within the batch join it (heap order
            # preserves the FIFO sequence tiebreak).
            while queue and queue[0][0] == time:
                item = pop(queue)[3]
                self._event_count += 1
                if isinstance(item, Event):
                    for cb in item._fired:
                        cb(item)
                else:
                    item()
        if until is not None and until > self._now:
            self._now = float(until)
        return self._now

    def peek(self) -> float:
        """Time of the next pending event, or ``float('inf')`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def run_steps(self, max_events: int, until: Optional[float] = None) -> int:
        """Execute at most *max_events* callbacks; returns how many ran.

        With an *until* horizon, events after it are left queued and the
        clock advances exactly to the horizon (matching :meth:`run`), so
        stepped and free-running execution order identically.
        """
        queue = self._queue
        executed = 0
        while queue and executed < max_events:
            time = queue[0][0]
            if until is not None and time > until:
                break
            if time < self._now:  # pragma: no cover - defensive
                raise SimulationError("event scheduled in the past")
            item = heapq.heappop(queue)[3]
            self._now = time
            self._event_count += 1
            if isinstance(item, Event):
                for cb in item._fired:
                    cb(item)
            else:
                item()
            executed += 1
        # Advance to the horizon only when stepping stopped because the
        # horizon (or queue exhaustion) was reached, never because the
        # step budget ran out with eligible events still queued.
        if (
            until is not None
            and until > self._now
            and (not queue or queue[0][0] > until)
        ):
            self._now = float(until)
        return executed

    def all_of(self, events: Iterable[Event], name: str = "all_of") -> Event:
        """Return an event that succeeds once every input event succeeds."""
        events = list(events)
        combined = self.event(name)
        remaining = len(events)
        if remaining == 0:
            combined.succeed([])
            return combined
        values: list[Any] = [None] * remaining

        def make_cb(index: int) -> Callable[[Event], None]:
            def cb(ev: Event) -> None:
                nonlocal remaining
                if not ev.ok:
                    if not combined.triggered:
                        combined.fail(ev.value)
                    return
                values[index] = ev.value
                remaining -= 1
                if remaining == 0 and not combined.triggered:
                    combined.succeed(list(values))

            return cb

        for i, ev in enumerate(events):
            if ev.triggered:
                make_cb(i)(ev)
            else:
                ev.callbacks.append(make_cb(i))
        return combined

    def any_of(self, events: Iterable[Event], name: str = "any_of") -> Event:
        """Return an event that succeeds when the first input succeeds."""
        events = list(events)
        combined = self.event(name)

        def cb(ev: Event) -> None:
            if combined.triggered:
                return
            if ev.ok:
                combined.succeed(ev.value)
            else:
                combined.fail(ev.value)

        for ev in events:
            if ev.triggered:
                cb(ev)
                if combined.triggered:
                    break
            else:
                ev.callbacks.append(cb)
        return combined

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Simulator t={self._now} queued={len(self._queue)}>"
