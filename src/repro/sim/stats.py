"""Statistics collectors for simulations.

Small, dependency-free accumulators used throughout the NoC and platform
simulators: plain counters, streaming samplers (mean/variance/min/max),
fixed-bin histograms, and time-weighted averages for occupancy-style
metrics (queue depth, utilization).
"""

from __future__ import annotations

import math
from typing import Iterable, Optional


class Counter:
    """A named monotonic counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "counter") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value})"


class Sampler:
    """Streaming mean/variance/min/max using Welford's algorithm."""

    __slots__ = ("name", "count", "_mean", "_m2", "minimum", "maximum", "total")

    def __init__(self, name: str = "sampler") -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.total = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Sampler({self.name}: n={self.count} mean={self.mean:.4g} "
            f"min={self.minimum:.4g} max={self.maximum:.4g})"
        )


class Histogram:
    """Fixed-width-bin histogram with overflow/underflow buckets."""

    def __init__(
        self,
        low: float,
        high: float,
        bins: int,
        name: str = "histogram",
    ) -> None:
        if high <= low:
            raise ValueError(f"histogram bounds inverted: [{low}, {high})")
        if bins < 1:
            raise ValueError(f"histogram needs >=1 bin, got {bins}")
        self.name = name
        self.low = float(low)
        self.high = float(high)
        self.bins = bins
        self.counts = [0] * bins
        self.underflow = 0
        self.overflow = 0
        self._width = (self.high - self.low) / bins

    def add(self, value: float) -> None:
        if value < self.low:
            self.underflow += 1
        elif value >= self.high:
            self.overflow += 1
        else:
            index = int((value - self.low) / self._width)
            # Guard the exact-high edge against float rounding.
            self.counts[min(index, self.bins - 1)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow

    def bin_edges(self) -> list[float]:
        """Return the ``bins + 1`` edges of the in-range buckets."""
        return [self.low + i * self._width for i in range(self.bins + 1)]

    def quantile(self, q: float) -> float:
        """Approximate quantile from binned in-range counts."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0,1], got {q}")
        in_range = sum(self.counts)
        if in_range == 0:
            return self.low
        target = q * in_range
        running = 0.0
        for i, count in enumerate(self.counts):
            running += count
            if running >= target:
                return self.low + (i + 0.5) * self._width
        return self.high


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal.

    Call :meth:`update` whenever the tracked level changes; the integral
    of level over time divided by elapsed time gives e.g. average queue
    depth or average utilization.
    """

    __slots__ = ("name", "_level", "_last_time", "_integral", "_start", "peak")

    def __init__(self, name: str = "timeweighted", start_time: float = 0.0) -> None:
        self.name = name
        self._level = 0.0
        self._last_time = float(start_time)
        self._integral = 0.0
        self._start = float(start_time)
        self.peak = 0.0

    @property
    def level(self) -> float:
        return self._level

    def update(self, now: float, level: float) -> None:
        """Record that the signal changed to *level* at time *now*."""
        if now < self._last_time:
            raise ValueError(
                f"time went backwards in {self.name}: {now} < {self._last_time}"
            )
        self._integral += self._level * (now - self._last_time)
        self._last_time = now
        self._level = float(level)
        if level > self.peak:
            self.peak = float(level)

    def adjust(self, now: float, delta: float) -> None:
        """Shift the level by *delta* at time *now*."""
        self.update(now, self._level + delta)

    def average(self, now: Optional[float] = None) -> float:
        """Time-average of the level from start until *now*."""
        end = self._last_time if now is None else now
        if end < self._last_time:
            raise ValueError("average() horizon precedes last update")
        elapsed = end - self._start
        if elapsed <= 0:
            return 0.0
        integral = self._integral + self._level * (end - self._last_time)
        return integral / elapsed


def summarize(values: Iterable[float]) -> dict[str, float]:
    """One-shot summary dict (n, mean, stdev, min, max) of an iterable."""
    sampler = Sampler()
    sampler.extend(values)
    return {
        "n": sampler.count,
        "mean": sampler.mean,
        "stdev": sampler.stdev,
        "min": sampler.minimum if sampler.count else 0.0,
        "max": sampler.maximum if sampler.count else 0.0,
    }
