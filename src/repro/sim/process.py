"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator and steps it each time a
yielded condition (a :class:`~repro.sim.core.Timeout`, an
:class:`~repro.sim.core.Event`, or another :class:`Process`) fires.  A
process is itself an awaitable condition: other processes can ``yield``
it to join on its completion and receive its return value.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.core import Event, SimulationError, Simulator, Timeout


class ProcessKilled(Exception):
    """Injected into a generator when its process is killed."""


class Process:
    """A running simulation process.

    Create via :meth:`repro.sim.core.Simulator.spawn`.  The wrapped
    generator may yield:

    * ``Timeout(d)``   — sleep for ``d`` time units;
    * ``Event``        — wait until the event triggers (receives its value,
      or raises its exception if the event failed);
    * ``Process``      — join on another process (receives its return value);
    * ``None``         — yield the processor for zero time (resumes at the
      same timestamp, after already-queued events).
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Any, Any, Any],
        name: str = "",
    ) -> None:
        self.sim = sim
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._done = sim.event(f"{self.name}.done")
        self._alive = True
        self._result: Any = None
        # Reusable resume callbacks: a process waits on exactly one
        # condition at a time, so one value-less step callback and one
        # bound event-resume callback cover the hot paths without a
        # fresh closure per yield.
        self._step_none: Callable[[], None] = lambda: self._step(None)
        self._resume_cb: Callable[[Event], None] = self._resume
        # Kick off at the current time so spawn() is side-effect free until
        # the event loop runs.
        sim.schedule(0.0, self._step_none)

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return self._alive

    @property
    def done_event(self) -> Event:
        """Event that succeeds (with the return value) on completion."""
        return self._done

    @property
    def result(self) -> Any:
        """Return value of the generator; only valid once finished."""
        if self._alive:
            raise SimulationError(f"process {self.name!r} still running")
        return self._result

    def kill(self) -> None:
        """Terminate the process by throwing :class:`ProcessKilled` into it."""
        if not self._alive:
            return
        try:
            self.generator.throw(ProcessKilled())
        except (ProcessKilled, StopIteration):
            pass
        self._finish(None)

    # -- internal machinery -------------------------------------------------

    def _step(self, send_value: Any, throw: Optional[BaseException] = None) -> None:
        if not self._alive:
            return
        try:
            if throw is not None:
                command = self.generator.throw(throw)
            else:
                command = self.generator.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(command)

    def _wait_on(self, command: Any) -> None:
        # Timeout first: it is by far the most common yield in the
        # simulated workloads, and a value-less Timeout reuses the
        # process's one step callback instead of allocating a closure.
        sim = self.sim
        if isinstance(command, Timeout):
            if command.value is None:
                sim.schedule(command.delay, self._step_none)
            else:
                sim.schedule(command.delay, lambda: self._step(command.value))
        elif isinstance(command, Event):
            self._wait_event(command)
        elif isinstance(command, Process):
            self._wait_event(command._done)
        elif command is None:
            sim.schedule(0.0, self._step_none)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported command "
                f"{command!r}; expected Timeout, Event, Process or None"
            )

    def _resume(self, ev: Event) -> None:
        if ev.ok:
            self._step(ev.value)
        else:
            self._step(None, throw=ev.value)

    def _wait_event(self, event: Event) -> None:
        if event.triggered:
            # Already fired: resume on the next scheduling slot to preserve
            # FIFO ordering with events queued before us.
            self.sim.schedule(0.0, lambda: self._resume(event))
        else:
            event.callbacks.append(self._resume_cb)

    def _finish(self, result: Any) -> None:
        self._alive = False
        self._result = result
        if not self._done.triggered:
            self._done.succeed(result)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self._alive else "done"
        return f"<Process {self.name!r} {state}>"


def every(
    sim: Simulator,
    period: float,
    action: Callable[[], None],
    name: str = "ticker",
) -> Process:
    """Spawn a process that calls *action* every *period* time units."""

    def ticker() -> Generator[Any, Any, None]:
        while True:
            yield Timeout(period)
            action()

    return sim.spawn(ticker(), name=name)
