"""Deterministic random-number streams.

Every stochastic model component draws from a *named* stream derived from
a single root seed, so adding a new consumer never perturbs the draws of
existing ones — simulations stay reproducible as the model grows.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """A factory of independent, named :class:`random.Random` streams.

    >>> streams = RandomStreams(seed=42)
    >>> a = streams.get("traffic")
    >>> b = streams.get("mapping")
    >>> a is streams.get("traffic")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(self._derive(name))
            self._streams[name] = stream
        return stream

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, name: str) -> "RandomStreams":
        """Create a child factory whose streams are independent of ours."""
        return RandomStreams(self._derive(f"fork:{name}"))

    def reset(self) -> None:
        """Drop all streams; subsequent gets re-derive from the root seed."""
        self._streams.clear()
