"""Point-to-point communication channels.

:class:`Channel` is a zero-latency rendezvous queue; :class:`LatencyChannel`
adds a fixed transport delay and finite bandwidth, which is the abstraction
the DSOC runtime uses when it is *not* running on the full flit-level NoC.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.sim.core import Event, SimulationError, Simulator
from repro.sim.resources import Store


class Channel:
    """A FIFO message channel between producer and consumer processes."""

    def __init__(
        self,
        sim: Simulator,
        capacity: Optional[int] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.name = name or "channel"
        self._store = Store(sim, capacity=capacity, name=f"{self.name}.store")
        self._delivered = 0

    @property
    def delivered(self) -> int:
        """Messages handed to receivers so far."""
        return self._delivered

    @property
    def depth(self) -> int:
        """Messages currently buffered."""
        return len(self._store)

    def send(self, message: Any) -> Event:
        """Return an event that succeeds once *message* is enqueued."""
        return self._store.put(message)

    def receive(self) -> Event:
        """Return an event that succeeds with the next message."""
        event = self._store.get()
        # Count on resolution: wrap callback if still pending.
        if event.triggered:
            self._delivered += 1
        else:
            event.callbacks.append(lambda _ev: self._count())
        return event

    def _count(self) -> None:
        self._delivered += 1


class LatencyChannel:
    """A channel with fixed latency and finite message bandwidth.

    Messages experience ``latency`` time units of transport delay; at most
    one message begins transport per ``1/bandwidth`` time units, modelling
    a serialized link.  Used as the lightweight interconnect stand-in when
    experiments do not need the full NoC.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: float,
        bandwidth: float = float("inf"),
        name: str = "",
    ) -> None:
        if latency < 0:
            raise SimulationError(f"negative channel latency {latency}")
        if bandwidth <= 0:
            raise SimulationError(f"non-positive channel bandwidth {bandwidth}")
        self.sim = sim
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)
        self.name = name or "latency_channel"
        self._store = Store(sim, name=f"{self.name}.store")
        self._next_free = 0.0
        self._sent = 0

    @property
    def sent(self) -> int:
        """Messages injected so far."""
        return self._sent

    def send(self, message: Any) -> Event:
        """Inject *message*; it arrives after serialization + latency."""
        now = self.sim.now
        if self.bandwidth == float("inf"):
            start = now
            self._next_free = now
        else:
            start = max(now, self._next_free)
            self._next_free = start + 1.0 / self.bandwidth
        arrival_delay = (start - now) + self.latency
        done = self.sim.event(f"{self.name}.sent")
        self._sent += 1

        def deliver() -> None:
            self._store.put(message)

        self.sim.schedule(arrival_delay, deliver)
        done.succeed(None)
        return done

    def receive(self) -> Event:
        """Return an event that succeeds with the next delivered message."""
        return self._store.get()

    @property
    def depth(self) -> int:
        """Messages delivered but not yet received."""
        return len(self._store)
