"""TLM generic payload."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional


class TlmCommand(Enum):
    """Transaction commands."""

    READ = "read"
    WRITE = "write"
    IGNORE = "ignore"   # debug/analysis transport


class ResponseStatus(Enum):
    """Transaction completion status."""

    INCOMPLETE = "incomplete"
    OK = "ok"
    ADDRESS_ERROR = "address_error"
    COMMAND_ERROR = "command_error"


@dataclass
class GenericPayload:
    """The TLM-2-style generic payload.

    Attributes
    ----------
    command:
        READ, WRITE or IGNORE.
    address:
        Byte address in the platform memory map.
    data:
        Write data in, read data out.
    length:
        Transfer length in bytes.
    status:
        Set by the target.
    """

    command: TlmCommand
    address: int
    data: Optional[bytes] = None
    length: int = 4
    status: ResponseStatus = ResponseStatus.INCOMPLETE

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"negative address {self.address:#x}")
        if self.length < 1:
            raise ValueError(f"transfer length must be >=1, got {self.length}")
        if (
            self.command is TlmCommand.WRITE
            and self.data is not None
            and len(self.data) != self.length
        ):
            raise ValueError(
                f"write data length {len(self.data)} != payload length "
                f"{self.length}"
            )

    @property
    def is_ok(self) -> bool:
        return self.status is ResponseStatus.OK
