"""Loosely-timed temporal decoupling.

The quantum keeper is the engine of TLM's simulation-speed advantage:
an initiator runs ahead of global simulated time, accumulating delay in
a local offset, and only synchronizes with the kernel when the offset
exceeds the global quantum.  Larger quanta mean fewer kernel events
(faster wall-clock simulation) at the cost of timing fidelity — the
tradeoff :mod:`repro.tlm.compare` measures.
"""

from __future__ import annotations

from typing import Generator

from repro.sim.core import Simulator, Timeout


class QuantumKeeper:
    """Tracks an initiator's local time offset against the quantum."""

    def __init__(self, sim: Simulator, quantum: float) -> None:
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.sim = sim
        self.quantum = quantum
        self._local_offset = 0.0
        self.sync_count = 0

    @property
    def local_time_offset(self) -> float:
        """Delay accumulated since the last kernel synchronization."""
        return self._local_offset

    @property
    def current_time(self) -> float:
        """Effective simulated time (kernel time + local offset)."""
        return self.sim.now + self._local_offset

    def add(self, delay: float) -> None:
        """Accumulate annotated delay locally."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._local_offset += delay

    def need_sync(self) -> bool:
        return self._local_offset >= self.quantum

    def sync(self) -> Generator:
        """Yield control to the kernel for the accumulated offset."""
        offset, self._local_offset = self._local_offset, 0.0
        self.sync_count += 1
        yield Timeout(offset)

    def maybe_sync(self) -> Generator:
        """Sync only when the quantum is exceeded (the LT idiom)."""
        if self.need_sync():
            yield from self.sync()

    def flush(self) -> Generator:
        """Unconditionally reconcile local time (end of a phase)."""
        if self._local_offset > 0:
            yield from self.sync()
