"""Transaction-level modeling (TLM).

Section 4 of the paper: "Transaction-level modeling (TLM) of mixed
H/W-S/W systems to anticipate the step when effective HW-SW
co-simulation is effective before RTL, reduce the time to develop
executable specifications of HW blocks and increase the simulation
speed [10].  Standardization of TLM approaches and API's is urgently
needed."

This package provides that layer in the TLM-2-style idiom: generic
payloads, blocking transport with timing annotation, loosely-timed
temporal decoupling with a quantum keeper, and an address-mapped bus.
:mod:`repro.tlm.compare` quantifies the paper's speed-vs-accuracy
argument by running the same traffic through the TLM bus and through
the cycle-approximate NoC.
"""

from repro.tlm.payload import GenericPayload, ResponseStatus, TlmCommand
from repro.tlm.quantum import QuantumKeeper
from repro.tlm.bus import AddressMap, TlmBus, TlmTarget, TlmMemory
from repro.tlm.compare import AbstractionComparison, compare_abstractions

__all__ = [
    "AbstractionComparison",
    "AddressMap",
    "GenericPayload",
    "QuantumKeeper",
    "ResponseStatus",
    "TlmBus",
    "TlmCommand",
    "TlmMemory",
    "TlmTarget",
    "compare_abstractions",
]
