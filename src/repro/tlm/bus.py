"""TLM bus and targets.

An :class:`AddressMap` routes generic payloads to :class:`TlmTarget`
instances by address range; :class:`TlmBus` adds per-transport timing
annotation (arbitration + transfer) in the blocking-transport style:
``b_transport(payload) -> annotated delay`` with no kernel interaction —
callers accumulate the delay in their quantum keeper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.tlm.payload import GenericPayload, ResponseStatus, TlmCommand


class TlmTarget:
    """Base class: a memory-mapped target with an access latency."""

    def __init__(self, name: str, access_delay: float = 10.0) -> None:
        if access_delay < 0:
            raise ValueError(f"negative access delay {access_delay}")
        self.name = name
        self.access_delay = access_delay
        self.transactions = 0

    def b_transport(self, payload: GenericPayload, offset: int) -> float:
        """Service the payload; returns the annotated delay."""
        self.transactions += 1
        delay = self.access_delay
        if payload.command is TlmCommand.READ:
            payload.data = self._read(offset, payload.length)
            payload.status = ResponseStatus.OK
        elif payload.command is TlmCommand.WRITE:
            self._write(offset, payload.data or b"\x00" * payload.length)
            payload.status = ResponseStatus.OK
        elif payload.command is TlmCommand.IGNORE:
            payload.status = ResponseStatus.OK
            delay = 0.0
        else:  # pragma: no cover - enum is closed
            payload.status = ResponseStatus.COMMAND_ERROR
        return delay

    def _read(self, offset: int, length: int) -> bytes:
        raise NotImplementedError

    def _write(self, offset: int, data: bytes) -> None:
        raise NotImplementedError


class TlmMemory(TlmTarget):
    """A byte-addressable sparse memory target."""

    def __init__(self, name: str, size: int, access_delay: float = 10.0) -> None:
        super().__init__(name, access_delay)
        if size < 1:
            raise ValueError(f"memory size must be >=1, got {size}")
        self.size = size
        self._bytes: Dict[int, int] = {}

    def _read(self, offset: int, length: int) -> bytes:
        return bytes(self._bytes.get(offset + i, 0) for i in range(length))

    def _write(self, offset: int, data: bytes) -> None:
        for i, value in enumerate(data):
            self._bytes[offset + i] = value


@dataclass(frozen=True)
class Mapping:
    """One address range claim."""

    base: int
    size: int
    target: TlmTarget

    @property
    def end(self) -> int:
        return self.base + self.size


class AddressMap:
    """Non-overlapping address decoding."""

    def __init__(self) -> None:
        self._maps: List[Mapping] = []

    def add(self, base: int, size: int, target: TlmTarget) -> None:
        if base < 0 or size < 1:
            raise ValueError(f"bad range base={base:#x} size={size}")
        new = Mapping(base, size, target)
        for existing in self._maps:
            if new.base < existing.end and existing.base < new.end:
                raise ValueError(
                    f"range {base:#x}+{size:#x} overlaps "
                    f"{existing.target.name} at {existing.base:#x}"
                )
        self._maps.append(new)
        self._maps.sort(key=lambda m: m.base)

    def decode(self, address: int) -> Optional[Tuple[TlmTarget, int]]:
        """Return (target, offset) for an address, or None."""
        for mapping in self._maps:
            if mapping.base <= address < mapping.end:
                return mapping.target, address - mapping.base
        return None

    def targets(self) -> List[TlmTarget]:
        return [m.target for m in self._maps]


class TlmBus:
    """A timed interconnect at the transaction level.

    Timing annotation per transport: fixed arbitration delay plus
    byte-count / bandwidth transfer time plus the target's access
    delay.  All pure computation — no simulation events — which is why
    loosely-timed TLM is orders of magnitude faster than cycle models.
    """

    def __init__(
        self,
        address_map: AddressMap,
        arbitration_delay: float = 2.0,
        bytes_per_cycle: float = 8.0,
    ) -> None:
        if bytes_per_cycle <= 0:
            raise ValueError("bus bandwidth must be positive")
        self.address_map = address_map
        self.arbitration_delay = arbitration_delay
        self.bytes_per_cycle = bytes_per_cycle
        self.transports = 0

    def b_transport(self, payload: GenericPayload) -> float:
        """Route and service the payload; returns the annotated delay."""
        self.transports += 1
        decoded = self.address_map.decode(payload.address)
        if decoded is None:
            payload.status = ResponseStatus.ADDRESS_ERROR
            return self.arbitration_delay
        target, offset = decoded
        transfer = payload.length / self.bytes_per_cycle
        return self.arbitration_delay + transfer + target.b_transport(
            payload, offset
        )
