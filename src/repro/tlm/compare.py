"""TLM speed-vs-accuracy comparison.

Runs the same master/memory traffic twice:

1. at the **loosely-timed TLM** level — a quantum-keeper master against
   the annotated :class:`~repro.tlm.bus.TlmBus` (few kernel events);
2. on the **cycle-approximate NoC** — OCP split transactions over the
   flit-level network (many kernel events).

The comparison returns the kernel-event ratio (the paper's "increase
the simulation speed" claim [10]) and the end-to-end timing error the
abstraction costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.noc.network import Network
from repro.noc.ocp import OcpMaster, OcpSlave
from repro.noc.topology import mesh
from repro.sim.core import Simulator
from repro.tlm.bus import AddressMap, TlmBus, TlmMemory
from repro.tlm.payload import GenericPayload, TlmCommand
from repro.tlm.quantum import QuantumKeeper


@dataclass(frozen=True)
class AbstractionComparison:
    """Outcome of one TLM-vs-cycle comparison run."""

    transactions: int
    tlm_final_time: float
    cycle_final_time: float
    tlm_kernel_events: int
    cycle_kernel_events: int
    quantum: float

    @property
    def event_ratio(self) -> float:
        """Cycle-model kernel events per TLM kernel event (the speedup
        proxy: wall-clock time tracks event count)."""
        return self.cycle_kernel_events / max(1, self.tlm_kernel_events)

    @property
    def timing_error(self) -> float:
        """Relative end-to-end timing error of the TLM model."""
        if self.cycle_final_time == 0:
            return 0.0
        return abs(self.tlm_final_time - self.cycle_final_time) / (
            self.cycle_final_time
        )


def _run_tlm(
    transactions: int,
    quantum: float,
    access_delay: float,
    arbitration_delay: float = 2.0,
) -> tuple:
    sim = Simulator()
    memory = TlmMemory("mem", size=1 << 16, access_delay=access_delay)
    address_map = AddressMap()
    address_map.add(0x0000, 1 << 16, memory)
    bus = TlmBus(address_map, arbitration_delay=arbitration_delay)
    keeper = QuantumKeeper(sim, quantum)
    done = {}

    def master():
        for i in range(transactions):
            write = GenericPayload(
                TlmCommand.WRITE,
                address=(i * 4) & 0xFFFF,
                data=i.to_bytes(4, "big"),
                length=4,
            )
            keeper.add(bus.b_transport(write))
            read = GenericPayload(
                TlmCommand.READ, address=(i * 4) & 0xFFFF, length=4
            )
            keeper.add(bus.b_transport(read))
            assert read.data == i.to_bytes(4, "big")
            yield from keeper.maybe_sync()
        yield from keeper.flush()
        done["time"] = sim.now

    sim.spawn(master())
    sim.run()
    return done["time"], sim.events_executed


def _run_cycle(transactions: int, access_delay: float) -> tuple:
    sim = Simulator()
    network = Network(sim, mesh(4, width=2), router_delay=1.0)
    master = OcpMaster(network, 0)
    OcpSlave(network, 3, access_latency=access_delay)
    done = {}

    def driver():
        for i in range(transactions):
            yield master.write(3, (i * 4) & 0xFFFF, i)
            value = yield master.read(3, (i * 4) & 0xFFFF)
            assert value == i
        done["time"] = sim.now

    sim.spawn(driver())
    sim.run()
    return done["time"], sim.events_executed


def compare_abstractions(
    transactions: int = 200,
    quantum: float = 1000.0,
    access_delay: float = 10.0,
    back_annotate: bool = True,
) -> AbstractionComparison:
    """Run both abstractions on identical traffic and compare.

    With *back_annotate* (the paper's TLM flow: timing figures flow up
    from the cycle-accurate model [7]), the TLM bus's arbitration delay
    is set to the NoC's zero-load transport latency, so the remaining
    TLM timing error reflects only the contention effects the
    abstraction genuinely cannot see.
    """
    if transactions < 1:
        raise ValueError(f"need >=1 transaction, got {transactions}")
    arbitration = 2.0
    if back_annotate:
        probe_sim = Simulator()
        probe_net = Network(probe_sim, mesh(4, width=2), router_delay=1.0)
        # Round trip = request transport + response transport; subtract
        # the pieces the TLM bus annotates itself (transfer + access).
        round_trip = probe_net.zero_load_latency(
            0, 3, 4
        ) + probe_net.zero_load_latency(3, 0, 4)
        arbitration = max(0.0, round_trip - 4 / 8.0)
    tlm_time, tlm_events = _run_tlm(
        transactions, quantum, access_delay, arbitration_delay=arbitration
    )
    cycle_time, cycle_events = _run_cycle(transactions, access_delay)
    return AbstractionComparison(
        transactions=transactions,
        tlm_final_time=tlm_time,
        cycle_final_time=cycle_time,
        tlm_kernel_events=tlm_events,
        cycle_kernel_events=cycle_events,
        quantum=quantum,
    )


def quantum_sweep(
    quanta: tuple = (10.0, 100.0, 1000.0, 10_000.0),
    transactions: int = 200,
) -> list[dict]:
    """The LT tradeoff curve: bigger quantum, fewer events, same error."""
    rows = []
    for quantum in quanta:
        comparison = compare_abstractions(transactions, quantum)
        rows.append(
            {
                "quantum": quantum,
                "tlm_events": comparison.tlm_kernel_events,
                "cycle_events": comparison.cycle_kernel_events,
                "event_ratio": round(comparison.event_ratio, 1),
                "timing_error": round(comparison.timing_error, 3),
            }
        )
    return rows
