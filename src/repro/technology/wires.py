"""Global-wire delay models.

The paper's Section 6.1 cites the prediction that "in 50 nm technologies
... the intra-chip propagation delay will be between six and ten clock
cycles" [Benini & De Micheli 2002].  This module models optimally
repeatered global wires whose absolute delay per millimetre *worsens*
with scaling while clock frequency rises, reproducing that trend (E9).

Model
-----
For an optimally repeatered wire the delay is linear in length with a
per-mm figure that grows as wires shrink (resistance rises faster than
capacitance falls).  We model::

    t_mm(node) = T180 * (180 / feature_nm) ** ALPHA      [ps/mm]

with ``T180 = 55 ps/mm`` and ``ALPHA = 0.5``, matching published
repeatered-wire trends (Ho, Mai & Horowitz, "The Future of Wires", 2001,
reports ~50-110 ps/mm over this range).  Unrepeatered wires are quadratic
in length (distributed RC) and are provided for comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.technology.node import ProcessNode, node

#: Repeatered global-wire delay at the 180 nm reference node (ps/mm).
REPEATED_T180_PS_PER_MM = 55.0

#: Scaling exponent of repeatered delay with feature size.
REPEATED_ALPHA = 0.5

#: Distributed RC constant for unrepeatered wires at 180 nm (ps/mm^2).
UNREPEATED_RC_180_PS_PER_MM2 = 40.0

#: Unrepeatered RC grows roughly quadratically faster with shrink.
UNREPEATED_ALPHA = 1.6


def repeated_wire_delay_ps_per_mm(process: ProcessNode) -> float:
    """Delay of an optimally repeatered global wire, ps per mm."""
    return REPEATED_T180_PS_PER_MM * (180.0 / process.feature_nm) ** REPEATED_ALPHA


def unrepeated_wire_delay_ps(process: ProcessNode, length_mm: float) -> float:
    """Delay of an unrepeatered (distributed RC) wire of given length."""
    if length_mm < 0:
        raise ValueError(f"negative wire length {length_mm}")
    rc = UNREPEATED_RC_180_PS_PER_MM2 * (180.0 / process.feature_nm) ** UNREPEATED_ALPHA
    return 0.5 * rc * length_mm ** 2


def cross_chip_cycles(
    process: ProcessNode,
    die_edge_mm: float = 15.0,
    clock_ghz: float | None = None,
) -> float:
    """Clock cycles for a signal to cross the die on a repeatered wire.

    *die_edge_mm* is the chip edge; the traversed distance is the die
    edge (the conventional "cross-chip" figure).  The node's nominal
    clock is used unless *clock_ghz* overrides it.
    """
    if die_edge_mm <= 0:
        raise ValueError(f"non-positive die edge {die_edge_mm}")
    f_ghz = process.clock_ghz if clock_ghz is None else clock_ghz
    delay_ps = repeated_wire_delay_ps_per_mm(process) * die_edge_mm
    return delay_ps * f_ghz / 1000.0


def corner_to_corner_cycles(
    process: ProcessNode,
    die_edge_mm: float = 15.0,
    clock_ghz: float | None = None,
) -> float:
    """Cycles for a Manhattan corner-to-corner traversal (2x the edge)."""
    return 2.0 * cross_chip_cycles(process, die_edge_mm, clock_ghz)


def critical_length_mm(process: ProcessNode) -> float:
    """Length above which repeater insertion beats a raw RC wire."""
    rc = UNREPEATED_RC_180_PS_PER_MM2 * (180.0 / process.feature_nm) ** UNREPEATED_ALPHA
    rep = repeated_wire_delay_ps_per_mm(process)
    # 0.5 * rc * L^2 == rep * L  =>  L = 2 * rep / rc
    return 2.0 * rep / rc


@dataclass(frozen=True)
class WireModel:
    """Convenience bundle of the wire figures for one node.

    >>> WireModel.for_node("50nm").cross_chip_cycles  # doctest: +SKIP
    7.0
    """

    process: ProcessNode
    die_edge_mm: float
    repeated_ps_per_mm: float
    cross_chip_ps: float
    cross_chip_cycles: float
    critical_length_mm: float

    @classmethod
    def for_node(cls, node_name: str, die_edge_mm: float = 15.0) -> "WireModel":
        process = node(node_name)
        per_mm = repeated_wire_delay_ps_per_mm(process)
        total_ps = per_mm * die_edge_mm
        return cls(
            process=process,
            die_edge_mm=die_edge_mm,
            repeated_ps_per_mm=per_mm,
            cross_chip_ps=total_ps,
            cross_chip_cycles=total_ps * process.clock_ghz / 1000.0,
            critical_length_mm=critical_length_mm(process),
        )

    def noc_hop_budget(self, hops: int, per_hop_router_cycles: float = 2.0) -> float:
        """Cycles for a NoC path of *hops* hops across the die.

        The wire span is split evenly among hops; each hop adds router
        pipeline cycles.  This is the "complex NoC could exhibit
        latencies many times larger" observation of Section 6.1.
        """
        if hops < 1:
            raise ValueError(f"need at least one hop, got {hops}")
        return self.cross_chip_cycles + hops * per_hop_router_cycles


def wire_bandwidth_gbps(process: ProcessNode, wire_pitch_um: float = 1.0) -> float:
    """Aggregate cross-section bandwidth per mm of die edge, Gbit/s.

    Each wire toggles at the node clock; wires per mm follows pitch.
    Used by the memory-architecture tradeoff (E17) for on-chip buses.
    """
    wires_per_mm = 1000.0 / wire_pitch_um
    return wires_per_mm * process.clock_ghz


def repeater_count(process: ProcessNode, length_mm: float) -> int:
    """Number of repeaters on an optimally repeatered wire."""
    crit = critical_length_mm(process)
    if crit <= 0:
        return 0
    return max(0, math.ceil(length_mm / crit) - 1)
