"""Defect-limited die yield and redundancy/self-repair models.

Supports the manufacturing-economics experiments (E1-E3, E5): die cost
is wafer cost divided by good dice, and good dice follow the negative
binomial yield model.  Also models the paper's Section 4 observation
that redundancy and self-repair become necessary at nanometer nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.technology.node import ProcessNode


def negative_binomial_yield(
    die_area_mm2: float,
    defect_density_per_cm2: float,
    clustering_alpha: float = 2.0,
) -> float:
    """Fraction of dice free of killer defects.

    The industry-standard negative binomial model::

        Y = (1 + A * D0 / alpha) ** -alpha

    *clustering_alpha* ~ 2 reflects typical defect clustering.
    """
    if die_area_mm2 <= 0:
        raise ValueError(f"non-positive die area {die_area_mm2}")
    if defect_density_per_cm2 < 0:
        raise ValueError(f"negative defect density {defect_density_per_cm2}")
    area_cm2 = die_area_mm2 / 100.0
    return (1.0 + area_cm2 * defect_density_per_cm2 / clustering_alpha) ** (
        -clustering_alpha
    )


def dice_per_wafer(die_area_mm2: float, wafer_diameter_mm: float) -> int:
    """Gross dice per wafer with an edge-loss correction."""
    if die_area_mm2 <= 0:
        raise ValueError(f"non-positive die area {die_area_mm2}")
    radius = wafer_diameter_mm / 2.0
    wafer_area = math.pi * radius ** 2
    edge = math.pi * wafer_diameter_mm * math.sqrt(die_area_mm2)
    gross = (wafer_area - edge / math.sqrt(2.0)) / die_area_mm2
    return max(0, int(gross))


def die_cost_usd(
    process: ProcessNode,
    die_area_mm2: float,
    clustering_alpha: float = 2.0,
) -> float:
    """Manufacturing cost of one *good* die (excludes NRE, test, package)."""
    gross = dice_per_wafer(die_area_mm2, process.wafer_diameter_mm)
    if gross == 0:
        raise ValueError(
            f"die of {die_area_mm2} mm^2 does not fit a "
            f"{process.wafer_diameter_mm} mm wafer"
        )
    y = negative_binomial_yield(
        die_area_mm2, process.defect_density_per_cm2, clustering_alpha
    )
    good = gross * y
    if good < 1:
        raise ValueError("yield too low: less than one good die per wafer")
    return process.wafer_cost_usd / good


def repaired_yield(
    base_yield: float,
    repairable_fraction: float,
    repair_success: float = 0.95,
) -> float:
    """Yield after redundancy repair.

    *repairable_fraction* of defect-hit dice (e.g. hits landing in
    redundant memory columns) can be repaired with probability
    *repair_success*.  This is the self-repair lever of Section 4.
    """
    for name, v in (
        ("base_yield", base_yield),
        ("repairable_fraction", repairable_fraction),
        ("repair_success", repair_success),
    ):
        if not 0.0 <= v <= 1.0:
            raise ValueError(f"{name} must be in [0,1], got {v}")
    failing = 1.0 - base_yield
    recovered = failing * repairable_fraction * repair_success
    return base_yield + recovered


@dataclass(frozen=True)
class YieldModel:
    """Yield and die-cost summary for a die at one node."""

    process: ProcessNode
    die_area_mm2: float
    yield_fraction: float
    gross_dice: int
    good_dice: float
    die_cost: float

    @classmethod
    def for_die(
        cls,
        process: ProcessNode,
        die_area_mm2: float,
        memory_fraction: float = 0.0,
        clustering_alpha: float = 2.0,
    ) -> "YieldModel":
        """Build the model; *memory_fraction* of area is repairable SRAM."""
        base = negative_binomial_yield(
            die_area_mm2, process.defect_density_per_cm2, clustering_alpha
        )
        y = repaired_yield(base, repairable_fraction=memory_fraction)
        gross = dice_per_wafer(die_area_mm2, process.wafer_diameter_mm)
        good = gross * y
        cost = process.wafer_cost_usd / good if good >= 1 else float("inf")
        return cls(
            process=process,
            die_area_mm2=die_area_mm2,
            yield_fraction=y,
            gross_dice=gross,
            good_dice=good,
            die_cost=cost,
        )
