"""Moore's-law scaling trends.

The paper's Section 6 quotes the canonical figure of 56% per year growth
in transistor count (Moore's law as the SIA/ITRS stated it for SoC logic).
These helpers project transistor budgets and densities between years and
nodes, and underpin the E4 ("1000 RISC processors on a die") and E7
(hardware-vs-software complexity growth) experiments.
"""

from __future__ import annotations

import math

from repro.technology.node import NODES, ProcessNode, node

#: Annual growth rate of transistors per chip quoted by the paper (Sec. 6).
MOORE_TRANSISTOR_GROWTH = 0.56

#: Annual growth rate of embedded-software complexity quoted by the paper.
SOFTWARE_COMPLEXITY_GROWTH = 1.40


def project_transistors(
    base_transistors: float,
    base_year: int,
    target_year: int,
    annual_growth: float = MOORE_TRANSISTOR_GROWTH,
) -> float:
    """Project a transistor budget forward (or backward) in time.

    Compound growth at *annual_growth* per year; the default reproduces
    the paper's 56%/year Moore's-law figure.
    """
    years = target_year - base_year
    return base_transistors * (1.0 + annual_growth) ** years


def density_at(node_name: str) -> float:
    """Logic density (transistors per mm^2) for a node label."""
    return node(node_name).density_mtx_per_mm2 * 1e6


def density_scaling_per_generation() -> float:
    """Geometric-mean density ratio between successive database nodes.

    Classic scaling predicts ~2x per generation; this checks what the
    database actually encodes.
    """
    ordered = sorted(NODES.values(), key=lambda n: -n.feature_nm)
    ratios = [
        ordered[i + 1].density_mtx_per_mm2 / ordered[i].density_mtx_per_mm2
        for i in range(len(ordered) - 1)
    ]
    log_sum = sum(math.log(r) for r in ratios)
    return math.exp(log_sum / len(ratios))


def transistor_budget(node_name: str, die_area_mm2: float) -> float:
    """Total logic transistors available on a die at the given node.

    The paper (Sec. 1) observes that a >100M transistor 0.13 um die holds
    "the logic of over one thousand 32 bit RISC processors".
    """
    return node(node_name).transistors_for_area(die_area_mm2)


def frequency_at(node_name: str) -> float:
    """Typical SoC clock (GHz) at a node."""
    return node(node_name).clock_ghz


def generation_index(process: ProcessNode) -> int:
    """Zero-based generation index ordered from the oldest node."""
    ordered = sorted(NODES.values(), key=lambda n: -n.feature_nm)
    return ordered.index(process)


def years_to_double(annual_growth: float) -> float:
    """Doubling time in years for a compound annual growth rate."""
    if annual_growth <= 0:
        raise ValueError(f"growth rate must be positive, got {annual_growth}")
    return math.log(2.0) / math.log(1.0 + annual_growth)
