"""Semiconductor technology scaling models.

This package encodes the paper's "semiconductor technology & basic IP"
abstraction level (Section 3, level 4): a database of process nodes from
0.35 µm down to 45 nm, Moore's-law scaling trends, global-wire delay
models (the source of the paper's "6 to 10 clock cycles to cross a 50 nm
die" claim), power models including the multi-Vt / back-bias / voltage
scaling techniques of Section 4, on-chip-variation statistical timing,
and defect-limited yield models with repair/redundancy.

The ST-proprietary process data the authors used is unavailable, so the
constants here are calibrated to the public ITRS-era trends the paper
itself cites; each experiment checks the model against the paper's
figures (see EXPERIMENTS.md).
"""

from repro.technology.node import (
    NODES,
    ProcessNode,
    node,
    nodes_between,
    node_names,
)
from repro.technology.scaling import (
    MOORE_TRANSISTOR_GROWTH,
    density_at,
    project_transistors,
    transistor_budget,
)
from repro.technology.wires import (
    WireModel,
    cross_chip_cycles,
    repeated_wire_delay_ps_per_mm,
    unrepeated_wire_delay_ps,
)
from repro.technology.power import (
    PowerModel,
    VtClass,
    back_bias_vt_shift,
    dynamic_power,
    leakage_current_per_um,
    multi_vt_optimize,
)
from repro.technology.variation import (
    VariationModel,
    statistical_path_delay,
    timing_yield,
)
from repro.technology.yieldmodel import (
    YieldModel,
    negative_binomial_yield,
    repaired_yield,
)

__all__ = [
    "MOORE_TRANSISTOR_GROWTH",
    "NODES",
    "PowerModel",
    "ProcessNode",
    "VariationModel",
    "VtClass",
    "WireModel",
    "YieldModel",
    "back_bias_vt_shift",
    "cross_chip_cycles",
    "density_at",
    "dynamic_power",
    "leakage_current_per_um",
    "multi_vt_optimize",
    "negative_binomial_yield",
    "node",
    "node_names",
    "nodes_between",
    "project_transistors",
    "repaired_yield",
    "repeated_wire_delay_ps_per_mm",
    "statistical_path_delay",
    "timing_yield",
    "transistor_budget",
    "unrepeated_wire_delay_ps",
]
