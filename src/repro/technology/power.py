"""Power models: dynamic, leakage, multi-Vt, back-bias and voltage scaling.

Section 4 of the paper lists the low-power techniques that "are a must,
not just an added-value feature": on-chip voltage control, back-bias to
master leakage, and multi-Vt transistors.  This module provides the
quantitative models behind experiment E16.

Physics used
------------
* Dynamic power: ``P = activity * C * Vdd^2 * f``.
* Subthreshold leakage: ``I = I0 * 10^(-(Vt - Vt_nom)/S)`` with
  subthreshold slope ``S`` ~ 85 mV/decade at room temperature.
* Alpha-power delay model: gate delay ~ ``Vdd / (Vdd - Vt)^alpha`` with
  ``alpha`` ~ 1.3 for short-channel devices.
* Reverse body bias raises Vt by ``k_body * sqrt`` effect, linearised to
  ~100 mV Vt shift per volt of bias for the nodes of interest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from repro.technology.node import ProcessNode

#: Subthreshold slope (V per decade of leakage current).
SUBTHRESHOLD_SLOPE_V = 0.085

#: Alpha-power-law velocity-saturation exponent.
ALPHA_POWER = 1.3

#: Linearised Vt shift per volt of reverse body bias (V/V).
BODY_EFFECT_V_PER_V = 0.10

#: Nominal threshold voltage as a fraction of Vdd for each node era.
VT_FRACTION_OF_VDD = 0.25


class VtClass(Enum):
    """Multi-threshold transistor flavours offered by a process."""

    LOW = "low_vt"      # fast, leaky: critical paths only
    NOMINAL = "std_vt"  # the reference device
    HIGH = "high_vt"    # slow, low-leak: everything else

    @property
    def vt_offset_v(self) -> float:
        """Threshold offset relative to the nominal device (V)."""
        return {"low_vt": -0.08, "std_vt": 0.0, "high_vt": +0.10}[self.value]


def dynamic_power(
    capacitance_f: float,
    vdd: float,
    frequency_hz: float,
    activity: float = 0.15,
) -> float:
    """Switching power in watts for a lumped capacitance.

    *activity* is the average node toggle probability per cycle; 0.1-0.2
    is typical for SoC logic.
    """
    if not 0.0 <= activity <= 1.0:
        raise ValueError(f"activity factor must be in [0,1], got {activity}")
    return activity * capacitance_f * vdd * vdd * frequency_hz


def leakage_current_per_um(
    process: ProcessNode,
    vt_class: VtClass = VtClass.NOMINAL,
    body_bias_v: float = 0.0,
) -> float:
    """Subthreshold leakage (A per um of device width).

    Reverse body bias (*body_bias_v* > 0) raises Vt and exponentially
    reduces leakage — the paper's "back-bias to master leakage".
    """
    vt_shift = vt_class.vt_offset_v + back_bias_vt_shift(body_bias_v)
    nominal_a = process.leakage_na_per_um * 1e-9
    return nominal_a * 10.0 ** (-vt_shift / SUBTHRESHOLD_SLOPE_V)


def back_bias_vt_shift(body_bias_v: float) -> float:
    """Vt increase (V) produced by a reverse body bias voltage."""
    if body_bias_v < 0:
        raise ValueError(f"forward body bias not modelled (got {body_bias_v})")
    return BODY_EFFECT_V_PER_V * body_bias_v


def gate_delay_factor(
    process: ProcessNode,
    vt_class: VtClass = VtClass.NOMINAL,
    vdd: float | None = None,
    body_bias_v: float = 0.0,
) -> float:
    """Relative gate delay vs. the nominal-Vt, nominal-Vdd device.

    Follows the alpha-power law; >1 means slower.
    """
    supply = process.vdd if vdd is None else vdd
    vt_nom = VT_FRACTION_OF_VDD * process.vdd
    vt = vt_nom + vt_class.vt_offset_v + back_bias_vt_shift(body_bias_v)
    if supply <= vt:
        raise ValueError(
            f"supply {supply} V too low for Vt {vt:.3f} V — device won't switch"
        )
    nominal = process.vdd / (process.vdd - vt_nom) ** ALPHA_POWER
    actual = supply / (supply - vt) ** ALPHA_POWER
    return actual / nominal


@dataclass(frozen=True)
class PowerModel:
    """Power figures for a logic block at one node.

    Parameters
    ----------
    process:
        The process node.
    transistors:
        Logic transistor count of the block.
    frequency_ghz:
        Operating clock (defaults to the node clock).
    activity:
        Toggle probability per cycle.
    avg_width_um:
        Mean transistor width for leakage accounting.
    """

    process: ProcessNode
    transistors: float
    frequency_ghz: float
    activity: float = 0.15
    avg_width_um: float = 0.5

    @classmethod
    def for_block(
        cls,
        process: ProcessNode,
        transistors: float,
        frequency_ghz: float | None = None,
        activity: float = 0.15,
    ) -> "PowerModel":
        freq = process.clock_ghz if frequency_ghz is None else frequency_ghz
        return cls(process, transistors, freq, activity)

    def dynamic_w(self, vdd: float | None = None) -> float:
        """Dynamic power (W) of the block."""
        supply = self.process.vdd if vdd is None else vdd
        # Half the devices' gate cap switches per toggle, roughly.
        cap_f = self.transistors * self.avg_width_um * (
            self.process.gate_cap_ff_per_um * 1e-15
        )
        return dynamic_power(cap_f, supply, self.frequency_ghz * 1e9, self.activity)

    def leakage_w(
        self,
        vt_class: VtClass = VtClass.NOMINAL,
        body_bias_v: float = 0.0,
        vdd: float | None = None,
    ) -> float:
        """Static power (W) of the block with one uniform Vt flavour."""
        supply = self.process.vdd if vdd is None else vdd
        per_um = leakage_current_per_um(self.process, vt_class, body_bias_v)
        return self.transistors * self.avg_width_um * per_um * supply

    def total_w(
        self,
        vt_class: VtClass = VtClass.NOMINAL,
        body_bias_v: float = 0.0,
        vdd: float | None = None,
    ) -> float:
        return self.dynamic_w(vdd) + self.leakage_w(vt_class, body_bias_v, vdd)

    def leakage_fraction(self) -> float:
        """Share of total power that is leakage at nominal corner."""
        total = self.total_w()
        return self.leakage_w() / total if total > 0 else 0.0


def multi_vt_optimize(
    model: PowerModel,
    critical_fraction: float = 0.2,
) -> dict[str, float]:
    """Assign high-Vt to non-critical devices, low/nominal Vt to critical.

    Returns the power breakdown of the optimized block versus a uniform
    nominal-Vt baseline.  *critical_fraction* is the share of devices on
    timing-critical paths that must keep the fast (nominal) flavour.
    """
    if not 0.0 <= critical_fraction <= 1.0:
        raise ValueError(
            f"critical fraction must be in [0,1], got {critical_fraction}"
        )
    baseline_leak = model.leakage_w(VtClass.NOMINAL)
    crit = critical_fraction
    optimized_leak = crit * model.leakage_w(VtClass.NOMINAL) + (
        1.0 - crit
    ) * model.leakage_w(VtClass.HIGH)
    dynamic = model.dynamic_w()
    return {
        "baseline_total_w": dynamic + baseline_leak,
        "optimized_total_w": dynamic + optimized_leak,
        "baseline_leakage_w": baseline_leak,
        "optimized_leakage_w": optimized_leak,
        "leakage_saving": 1.0 - optimized_leak / baseline_leak,
        "dynamic_w": dynamic,
    }


def dvs_energy_delay(
    model: PowerModel,
    vdd_scale: float,
) -> dict[str, float]:
    """Dynamic-voltage-scaling tradeoff at a scaled supply.

    Returns relative energy-per-operation and delay factors versus the
    nominal supply; energy falls ~quadratically, delay rises per the
    alpha-power law.
    """
    if vdd_scale <= 0:
        raise ValueError(f"vdd scale must be positive, got {vdd_scale}")
    vdd = model.process.vdd * vdd_scale
    delay = gate_delay_factor(model.process, vdd=vdd)
    energy = vdd_scale ** 2
    return {
        "vdd": vdd,
        "delay_factor": delay,
        "energy_factor": energy,
        "energy_delay_product": energy * delay,
    }


def leakage_fraction_trend(processes: list[ProcessNode]) -> list[tuple[str, float]]:
    """Leakage share of total power across nodes (it explodes with scaling)."""
    out = []
    for process in processes:
        model = PowerModel.for_block(process, transistors=10e6)
        out.append((process.name, model.leakage_fraction()))
    return out
