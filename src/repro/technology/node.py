"""Process-node database.

Each :class:`ProcessNode` bundles the per-node constants the rest of the
library consumes: logic density, typical SoC clock, supply voltage,
mask-set cost, wafer cost, defect density, and leakage characteristics.

Values follow the public ITRS-era trends the paper cites: mask-set NRE
multiplied by ~10 over three generations and exceeding $1M at 90 nm
(Section 1), logic density roughly doubling per node, and supply voltage
descending from 3.3 V at 0.35 µm toward sub-1 V at the nanometer nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ProcessNode:
    """Constants for one CMOS logic process generation.

    Attributes
    ----------
    name:
        Conventional node label, e.g. ``"90nm"``.
    feature_nm:
        Drawn feature size in nanometres.
    year:
        Approximate year of volume production.
    density_mtx_per_mm2:
        Logic transistor density in millions of transistors per mm^2.
    clock_ghz:
        Typical high-volume SoC clock frequency.
    vdd:
        Nominal supply voltage (V).
    mask_set_cost_usd:
        Full mask-set NRE in dollars.
    wafer_cost_usd:
        Processed 200/300 mm wafer cost in dollars.
    wafer_diameter_mm:
        Wafer diameter.
    defect_density_per_cm2:
        Random defect density D0 used by the yield model.
    metal_layers:
        Typical metal stack depth.
    gate_cap_ff_per_um:
        Gate capacitance per micron of transistor width.
    leakage_na_per_um:
        Nominal-Vt subthreshold leakage per micron of width at 25C.
    """

    name: str
    feature_nm: float
    year: int
    density_mtx_per_mm2: float
    clock_ghz: float
    vdd: float
    mask_set_cost_usd: float
    wafer_cost_usd: float
    wafer_diameter_mm: float
    defect_density_per_cm2: float
    metal_layers: int
    gate_cap_ff_per_um: float
    leakage_na_per_um: float
    extras: dict = field(default_factory=dict, compare=False)

    @property
    def feature_um(self) -> float:
        """Feature size in microns."""
        return self.feature_nm / 1000.0

    @property
    def clock_period_ps(self) -> float:
        """Nominal clock period in picoseconds."""
        return 1000.0 / self.clock_ghz

    def transistors_for_area(self, area_mm2: float) -> float:
        """Logic transistors that fit in *area_mm2* of silicon."""
        return self.density_mtx_per_mm2 * 1e6 * area_mm2

    def area_for_transistors(self, transistors: float) -> float:
        """Silicon area (mm^2) needed for *transistors* logic transistors."""
        return transistors / (self.density_mtx_per_mm2 * 1e6)


# One generation ~= 0.7x linear shrink ~= 2x density.  Mask cost grows
# ~2.1-2.2x per generation so that three generations multiply it by ~10,
# matching the paper's Section 1 claim, and the 90 nm entry exceeds $1M.
NODES: dict[str, ProcessNode] = {
    n.name: n
    for n in [
        ProcessNode(
            name="350nm", feature_nm=350, year=1995,
            density_mtx_per_mm2=0.09, clock_ghz=0.20, vdd=3.3,
            mask_set_cost_usd=48_000, wafer_cost_usd=1_100,
            wafer_diameter_mm=200, defect_density_per_cm2=0.60,
            metal_layers=4, gate_cap_ff_per_um=1.60, leakage_na_per_um=0.02,
        ),
        ProcessNode(
            name="250nm", feature_nm=250, year=1997,
            density_mtx_per_mm2=0.18, clock_ghz=0.35, vdd=2.5,
            mask_set_cost_usd=100_000, wafer_cost_usd=1_400,
            wafer_diameter_mm=200, defect_density_per_cm2=0.50,
            metal_layers=5, gate_cap_ff_per_um=1.45, leakage_na_per_um=0.06,
        ),
        ProcessNode(
            name="180nm", feature_nm=180, year=1999,
            density_mtx_per_mm2=0.36, clock_ghz=0.60, vdd=1.8,
            mask_set_cost_usd=210_000, wafer_cost_usd=1_800,
            wafer_diameter_mm=200, defect_density_per_cm2=0.40,
            metal_layers=6, gate_cap_ff_per_um=1.30, leakage_na_per_um=0.20,
        ),
        ProcessNode(
            name="130nm", feature_nm=130, year=2001,
            density_mtx_per_mm2=0.72, clock_ghz=1.00, vdd=1.2,
            mask_set_cost_usd=480_000, wafer_cost_usd=2_500,
            wafer_diameter_mm=200, defect_density_per_cm2=0.35,
            metal_layers=7, gate_cap_ff_per_um=1.15, leakage_na_per_um=1.0,
        ),
        ProcessNode(
            name="90nm", feature_nm=90, year=2003,
            density_mtx_per_mm2=1.45, clock_ghz=1.80, vdd=1.0,
            mask_set_cost_usd=1_050_000, wafer_cost_usd=3_200,
            wafer_diameter_mm=300, defect_density_per_cm2=0.30,
            metal_layers=8, gate_cap_ff_per_um=1.00, leakage_na_per_um=5.0,
        ),
        ProcessNode(
            name="65nm", feature_nm=65, year=2005,
            density_mtx_per_mm2=2.90, clock_ghz=2.80, vdd=0.9,
            mask_set_cost_usd=2_200_000, wafer_cost_usd=4_000,
            wafer_diameter_mm=300, defect_density_per_cm2=0.28,
            metal_layers=9, gate_cap_ff_per_um=0.85, leakage_na_per_um=15.0,
        ),
        ProcessNode(
            name="50nm", feature_nm=50, year=2007,
            density_mtx_per_mm2=5.20, clock_ghz=4.50, vdd=0.8,
            mask_set_cost_usd=4_500_000, wafer_cost_usd=4_800,
            wafer_diameter_mm=300, defect_density_per_cm2=0.26,
            metal_layers=10, gate_cap_ff_per_um=0.72, leakage_na_per_um=40.0,
        ),
        ProcessNode(
            name="45nm", feature_nm=45, year=2008,
            density_mtx_per_mm2=6.10, clock_ghz=5.00, vdd=0.8,
            mask_set_cost_usd=5_800_000, wafer_cost_usd=5_200,
            wafer_diameter_mm=300, defect_density_per_cm2=0.25,
            metal_layers=10, gate_cap_ff_per_um=0.68, leakage_na_per_um=55.0,
        ),
    ]
}


def node(name: str) -> ProcessNode:
    """Look up a node by label (e.g. ``"90nm"``).

    Raises :class:`KeyError` with the available labels on a miss.
    """
    try:
        return NODES[name]
    except KeyError:
        raise KeyError(
            f"unknown process node {name!r}; known: {', '.join(NODES)}"
        ) from None


def node_names() -> list[str]:
    """Node labels ordered from oldest (largest) to newest (smallest)."""
    return sorted(NODES, key=lambda n: -NODES[n].feature_nm)


def nodes_between(start: str, end: str) -> list[ProcessNode]:
    """Inclusive list of nodes from *start* down to *end* feature size."""
    lo = node(end).feature_nm
    hi = node(start).feature_nm
    if lo > hi:
        raise ValueError(f"start node {start!r} is smaller than end {end!r}")
    ordered = sorted(NODES.values(), key=lambda n: -n.feature_nm)
    return [n for n in ordered if lo <= n.feature_nm <= hi]
