"""On-chip variation and statistical timing.

Section 4 of the paper predicts that deep-submicron effects
(electromigration, voltage drop, on-chip variation) "will lead to
statistical design, self-repair and various forms of redundancy".  This
module provides a simple statistical static timing model: path delays as
sums of Gaussian stage delays, chip timing yield as the probability that
the slowest of N critical paths meets the clock period.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.technology.node import ProcessNode

#: Per-gate random sigma as a fraction of nominal delay, by rough node era.
#: Variation worsens as devices shrink (fewer dopant atoms, litho limits).
def gate_sigma_fraction(process: ProcessNode) -> float:
    """Random per-gate delay sigma / nominal, growing as features shrink."""
    # ~4% at 180nm rising to ~12% at 45nm, linear in 1/feature.
    return min(0.20, 0.04 * (180.0 / process.feature_nm) ** 0.75)


def statistical_path_delay(
    process: ProcessNode,
    stages: int,
    stage_delay_ps: float,
    corr: float = 0.3,
) -> tuple[float, float]:
    """Mean and sigma (ps) of a logic path of *stages* gates.

    *corr* is the pairwise correlation of stage delays (systematic
    across-chip component); fully random variation averages out over a
    long path, correlated variation does not.
    """
    if stages < 1:
        raise ValueError(f"path needs >=1 stage, got {stages}")
    if not 0.0 <= corr <= 1.0:
        raise ValueError(f"correlation must be in [0,1], got {corr}")
    sigma_gate = gate_sigma_fraction(process) * stage_delay_ps
    mean = stages * stage_delay_ps
    # Var of sum with uniform pairwise correlation rho:
    # n * s^2 + n(n-1) * rho * s^2
    var = stages * sigma_gate ** 2 + stages * (stages - 1) * corr * sigma_gate ** 2
    return mean, math.sqrt(var)


def _phi(x: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def timing_yield(
    process: ProcessNode,
    clock_period_ps: float,
    stages: int = 12,
    critical_paths: int = 1000,
    corr: float = 0.3,
    derate: float = 1.0,
) -> float:
    """Probability the chip meets timing across its critical paths.

    Path delays are Gaussian and independent across paths; the chip
    passes if every path meets the (derated) period.  *derate* > 1
    models OCV margin added by the designer.
    """
    if clock_period_ps <= 0:
        raise ValueError(f"non-positive clock period {clock_period_ps}")
    # Size the stage delay so the nominal path uses ~85% of the period.
    stage_delay = 0.85 * clock_period_ps / stages
    mean, sigma = statistical_path_delay(process, stages, stage_delay, corr)
    budget = clock_period_ps / derate
    if sigma == 0:
        return 1.0 if mean <= budget else 0.0
    per_path = _phi((budget - mean) / sigma)
    return per_path ** critical_paths


def required_derate_for_yield(
    process: ProcessNode,
    target_yield: float = 0.95,
    stages: int = 12,
    critical_paths: int = 1000,
    corr: float = 0.3,
) -> float:
    """Frequency derate (>= 1) needed to reach *target_yield*.

    The margin designers must add grows as variation grows with scaling
    — one mechanism behind the paper's design-productivity decline
    argument (E6).
    """
    if not 0.0 < target_yield < 1.0:
        raise ValueError(f"target yield must be in (0,1), got {target_yield}")
    period = process.clock_period_ps
    lo, hi = 1.0, 3.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        y = timing_yield(process, period * mid, stages, critical_paths, corr)
        if y >= target_yield:
            hi = mid
        else:
            lo = mid
    return hi


@dataclass(frozen=True)
class VariationModel:
    """Summary of variation figures for one node."""

    process: ProcessNode
    gate_sigma_fraction: float
    derate_for_95pct: float

    @classmethod
    def for_node(cls, process: ProcessNode) -> "VariationModel":
        return cls(
            process=process,
            gate_sigma_fraction=gate_sigma_fraction(process),
            derate_for_95pct=required_derate_for_yield(process),
        )


def voltage_drop_derate(
    current_density_a_per_mm2: float,
    grid_resistance_mohm: float,
    vdd: float,
) -> float:
    """Delay derate from IR drop on the supply grid.

    Delay rises roughly linearly with supply droop for small droops.
    """
    droop = current_density_a_per_mm2 * grid_resistance_mohm * 1e-3
    if droop >= vdd:
        raise ValueError("IR drop exceeds the supply rail")
    # Alpha-power sensitivity near nominal: d(delay)/delay ~= 1.5 d(V)/V.
    return 1.0 + 1.5 * droop / vdd


def electromigration_mttf_years(
    current_density_ma_per_um2: float,
    temperature_c: float = 105.0,
    activation_ev: float = 0.9,
) -> float:
    """Black's-equation mean-time-to-failure for a wire, in years.

    Normalised so that 1 mA/um^2 at 105 C gives a 10-year MTTF.
    """
    if current_density_ma_per_um2 <= 0:
        raise ValueError("current density must be positive")
    k_b = 8.617e-5  # eV/K
    t_k = temperature_c + 273.15
    t_ref = 105.0 + 273.15
    arrhenius = math.exp(activation_ev / (k_b * t_k)) / math.exp(
        activation_ev / (k_b * t_ref)
    )
    return 10.0 * arrhenius / current_density_ma_per_um2 ** 2
