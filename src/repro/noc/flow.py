"""Batched flow-level NoC evaluation (the analytic fast path).

The event-driven :class:`~repro.noc.network.Network` simulates every
packet hop; that fidelity is needed for closed-loop workloads (DSOC
request/response, OCP split transactions) but is overkill for the
open-loop characterization sweeps of E10/A1, where only *steady-state*
metrics are read off.  This module evaluates the same metrics in closed
form:

1. a per-(src, dst) terminal **demand matrix** (expected flits per
   cycle) is derived from the traffic pattern — the same patterns
   :class:`~repro.noc.traffic.TrafficPattern` injects stochastically;
2. the demand is **pushed through the shared routing tables**
   (:func:`~repro.noc.routing.cached_routing`, including the per-flow
   ECMP hash the event model uses) accumulating per-link flit loads;
   the reductions run in pure Python on purpose — the link vectors
   are tiny, and keeping numpy out of this module makes flow metrics
   identical whether or not the optional ``[perf]`` extra is
   installed;
3. per-link waiting times follow the M/D/1 queue (Poisson arrivals —
   the generators draw exponential gaps — and deterministic
   serialization), with a linear backlog-growth term for overloaded
   links, yielding per-pair latencies, accepted throughput and the
   saturation flag with the exact decision rule
   :func:`~repro.noc.metrics.simulate_traffic` applies.

The result is a :class:`~repro.noc.metrics.NocMetrics` with the same
fields as a DES run, computed in microseconds instead of seconds, and
cross-validated against the event model by ``tests/noc/test_flow.py``
(see the validity envelope in ``docs/performance.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.noc.routing import FLOW_ID_MULT, RoutingTable, cached_routing
from repro.noc.topology import Topology, TopologyKind
from repro.noc.traffic import TrafficPattern


def demand_matrix(
    topology: Topology,
    pattern: TrafficPattern,
    offered_load: float,
    hotspot: int = 0,
    hotspot_fraction: float = 0.5,
) -> List[List[float]]:
    """Expected flits/cycle from each source to each destination.

    Mirrors :meth:`TrafficPattern.destination`'s selection law in
    expectation: uniform spreads over the other ``N - 1`` terminals,
    the deterministic patterns concentrate the full load on one
    destination, and hotspot mixes the two.
    """
    if offered_load <= 0:
        raise ValueError(f"offered load must be positive, got {offered_load}")
    n = topology.num_terminals
    demand = [[0.0] * n for _ in range(n)]
    if n < 2:
        return demand
    uniform_share = offered_load / (n - 1)
    for src in range(n):
        if pattern is TrafficPattern.UNIFORM:
            for dst in range(n):
                if dst != src:
                    demand[src][dst] = uniform_share
        elif pattern is TrafficPattern.HOTSPOT:
            if src == hotspot:
                for dst in range(n):
                    if dst != src:
                        demand[src][dst] = uniform_share
            else:
                spread = (1.0 - hotspot_fraction) * uniform_share
                for dst in range(n):
                    if dst != src:
                        demand[src][dst] = spread
                demand[src][hotspot] += hotspot_fraction * offered_load
        else:
            # TRANSPOSE / BIT_COMPLEMENT / NEIGHBOR are deterministic.
            rng = _NoRng()
            dst = pattern.destination(src, n, rng)
            demand[src][dst] = offered_load
    return demand


class _NoRng:
    """Guard RNG for deterministic patterns (they must not draw)."""

    def randrange(self, *_a):  # pragma: no cover - defensive
        raise RuntimeError("deterministic pattern drew from the RNG")

    def random(self):  # pragma: no cover - defensive
        raise RuntimeError("deterministic pattern drew from the RNG")


@dataclass
class FlowSolution:
    """Per-link steady-state loads for one demand matrix."""

    topology: Topology
    routing: RoutingTable
    #: flits/cycle entering each router-to-router link (or the bus).
    link_load: Dict[Tuple[int, int], float]
    injection_load: List[float]
    ejection_load: List[float]
    bus_load: float
    #: router path (inclusive) used by each nonzero (src, dst) pair.
    pair_paths: Dict[Tuple[int, int], List[int]]


class FlowModel:
    """Closed-form NoC evaluation for one topology.

    Shares the memoized routing table with the event model, so a flow
    evaluation never re-runs BFS, and derives flow ids with the shared
    :data:`~repro.noc.routing.FLOW_ID_MULT` constant, so flow-mode
    link loads land on the same ECMP links DES packets traverse.
    """

    def __init__(
        self,
        topology: Topology,
        router_delay: float = 2.0,
        link_bandwidth: float = 1.0,
        injection_bandwidth: float = 1.0,
    ) -> None:
        if router_delay < 0:
            raise ValueError(f"negative router delay {router_delay}")
        self.topology = topology
        self.routing = cached_routing(topology)
        self.router_delay = router_delay
        self.link_bandwidth = link_bandwidth
        self.injection_bandwidth = injection_bandwidth
        self.is_bus = topology.kind is TopologyKind.BUS

    # -- structure ----------------------------------------------------------

    def pair_path(self, src: int, dst: int) -> List[int]:
        """Router path for a terminal pair (same ECMP choice as DES)."""
        tr = self.topology.terminal_router
        return self.routing.route(
            tr[src], tr[dst], flow=src * FLOW_ID_MULT + dst
        )

    def zero_load_latency(self, src: int, dst: int, size_flits: int = 4) -> float:
        """Uncontended latency; identical to the event model's."""
        if self.is_bus:
            return size_flits + self.router_delay
        tr = self.topology.terminal_router
        if tr[src] == tr[dst]:
            return size_flits + self.router_delay + size_flits
        hops = self.routing.hops(tr[src], tr[dst])
        return (
            size_flits
            + hops * (self.router_delay + size_flits)
            + size_flits
        )

    # -- solving ------------------------------------------------------------

    def push(self, demand: List[List[float]]) -> FlowSolution:
        """Accumulate a demand matrix onto the links it routes over."""
        n = self.topology.num_terminals
        link_load: Dict[Tuple[int, int], float] = {
            edge: 0.0 for edge in self.topology.edges
        }
        injection = [0.0] * n
        ejection = [0.0] * n
        bus_load = 0.0
        pair_paths: Dict[Tuple[int, int], List[int]] = {}
        for src in range(n):
            row = demand[src]
            for dst in range(n):
                rate = row[dst]
                if rate <= 0.0 or dst == src:
                    continue
                injection[src] += rate
                ejection[dst] += rate
                if self.is_bus:
                    bus_load += rate
                    continue
                path = self.pair_path(src, dst)
                pair_paths[(src, dst)] = path
                for i in range(len(path) - 1):
                    link_load[(path[i], path[i + 1])] += rate
        return FlowSolution(
            topology=self.topology,
            routing=self.routing,
            link_load=link_load,
            injection_load=injection,
            ejection_load=ejection,
            bus_load=bus_load,
            pair_paths=pair_paths,
        )

    # -- queueing -----------------------------------------------------------

    def _wait(self, rho: float, service: float, horizon_mid: float) -> float:
        """Expected waiting time at one link.

        Stable links follow the M/D/1 mean wait
        ``rho * S / (2 * (1 - rho))``, capped at the **critical knee**
        ``sqrt(S * horizon_mid / 2)`` — the diffusion-scale backlog a
        critically loaded queue accumulates over a finite window (the
        steady-state formula diverges at the pole, but a run of length
        ~2*horizon_mid can never observe it).  Overloaded links start
        at that same knee and add the linear backlog-growth term
        ``(rho - 1) * horizon_mid`` (the average over arrivals spread
        across the run), capped at *horizon_mid*.  The two branches
        meet at ``rho = 1``, so the wait is continuous and monotone in
        load — saturation sweeps cannot see latency *drop* as a link
        crosses its capacity.
        """
        if rho <= 0.0:
            return 0.0
        knee = (service * horizon_mid / 2.0) ** 0.5
        if rho < 1.0:
            return min(rho * service / (2.0 * (1.0 - rho)), knee)
        return min(knee + (rho - 1.0) * horizon_mid, horizon_mid)

    def evaluate(
        self,
        pattern: TrafficPattern,
        offered_load: float,
        duration: float = 5000.0,
        warmup: float = 1000.0,
        packet_size: int = 4,
        hotspot: int = 0,
        hotspot_fraction: float = 0.5,
        saturation_latency_factor: float = 8.0,
    ) -> "NocMetrics":
        """One (pattern, load) point as a :class:`NocMetrics` record."""
        from repro.noc.metrics import NocMetrics

        if warmup >= duration:
            raise ValueError(
                f"warmup {warmup} must be shorter than duration {duration}"
            )
        topo = self.topology
        n = topo.num_terminals
        demand = demand_matrix(
            topo, pattern, offered_load, hotspot, hotspot_fraction
        )
        solution = self.push(demand)
        service = packet_size / self.link_bandwidth
        inj_service = packet_size / self.injection_bandwidth
        horizon_mid = (warmup + duration) / 2.0

        # Per-link utilization and waiting time.  The reductions stay
        # in pure Python deliberately: the link list is tiny (tens of
        # entries) and numpy's pairwise-summed .mean() differs from
        # sequential sum() in the last ulp, which would make flow
        # metrics depend on whether the optional [perf] extra is
        # installed.
        bw = self.link_bandwidth
        if self.is_bus:
            rho_bus = solution.bus_load / bw
            link_utils = [min(1.0, rho_bus)]
            bus_wait = self._wait(rho_bus, service, horizon_mid)
        else:
            link_utils = [
                min(1.0, ld / bw) for ld in solution.link_load.values()
            ]
            wait_by_link = {
                link: self._wait(load / bw, service, horizon_mid)
                for link, load in solution.link_load.items()
            }
            rho_by_link = {
                link: load / bw for link, load in solution.link_load.items()
            }

        # Per-pair latency and delivered fraction.
        total_rate = 0.0
        delivered_rate = 0.0
        weighted_latency = 0.0
        min_latency = float("inf")
        max_latency = 0.0
        for src in range(n):
            row = demand[src]
            for dst in range(n):
                rate = row[dst]
                if rate <= 0.0 or dst == src:
                    continue
                total_rate += rate
                base = self.zero_load_latency(src, dst, packet_size)
                inj_rho = solution.injection_load[src] / self.injection_bandwidth
                ej_rho = solution.ejection_load[dst] / self.injection_bandwidth
                wait = self._wait(inj_rho, inj_service, horizon_mid)
                wait += self._wait(ej_rho, inj_service, horizon_mid)
                bottleneck = max(inj_rho, ej_rho)
                if self.is_bus:
                    wait += bus_wait
                    bottleneck = max(bottleneck, rho_bus)
                else:
                    path = solution.pair_paths.get((src, dst))
                    if path:
                        for i in range(len(path) - 1):
                            link = (path[i], path[i + 1])
                            wait += wait_by_link[link]
                            rho = rho_by_link[link]
                            if rho > bottleneck:
                                bottleneck = rho
                latency = base + wait
                # A flow through an overloaded link only delivers the
                # bottleneck's share of its demand.
                fraction = 1.0 if bottleneck <= 1.0 else 1.0 / bottleneck
                delivered_rate += rate * fraction
                weighted_latency += rate * fraction * latency
                if latency < min_latency:
                    min_latency = latency
                if latency > max_latency:
                    max_latency = latency

        accepted = delivered_rate / n if n else 0.0
        avg_latency = (
            weighted_latency / delivered_rate
            if delivered_rate > 0
            else float("inf")
        )
        # Expected packet counts over the run (the DES fields they map
        # to are realized draws; these are their means).
        injected = int(round(total_rate / packet_size * duration))
        delivered = int(round(delivered_rate / packet_size * duration))

        ref = self.zero_load_latency(0, n // 2, packet_size)
        saturated = (
            avg_latency > saturation_latency_factor * ref
            or accepted < 0.75 * min(offered_load, 1.0)
        )
        if self.is_bus:
            avg_util = peak_util = min(1.0, rho_bus)
        elif not link_utils:
            avg_util = peak_util = 0.0
        else:
            avg_util = sum(link_utils) / len(link_utils)
            peak_util = max(link_utils)
        return NocMetrics(
            topology_name=topo.name,
            pattern=pattern.value,
            offered_load=offered_load,
            accepted_load=accepted,
            avg_latency=avg_latency,
            max_latency=max_latency if delivered_rate > 0 else float("inf"),
            min_latency=min_latency if delivered_rate > 0 else float("inf"),
            delivered_packets=delivered,
            injected_packets=injected,
            avg_link_utilization=avg_util,
            peak_link_utilization=peak_util,
            wiring_cost=topo.wiring_cost(),
            saturated=saturated,
        )


def flow_traffic_metrics(
    topology: Topology,
    pattern: TrafficPattern,
    offered_load: float,
    duration: float = 5000.0,
    warmup: float = 1000.0,
    packet_size: int = 4,
    router_delay: float = 2.0,
    seed: int = 1,
    saturation_latency_factor: float = 8.0,
) -> "NocMetrics":
    """Drop-in flow-mode counterpart of :func:`simulate_traffic`.

    Deterministic: *seed* is accepted for signature compatibility and
    ignored (the flow model computes expectations, not sample paths).
    """
    del seed
    model = FlowModel(topology, router_delay=router_delay)
    return model.evaluate(
        pattern,
        offered_load,
        duration=duration,
        warmup=warmup,
        packet_size=packet_size,
        saturation_latency_factor=saturation_latency_factor,
    )
