"""NoC measurement harness.

:func:`simulate_traffic` runs a topology under a synthetic load and
returns a :class:`NocMetrics` record: average/percentile latency,
accepted throughput, link utilization and cost figures.  Experiment E10
sweeps this over topology x pattern x load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.noc.network import Network
from repro.noc.topology import Topology
from repro.noc.traffic import TrafficGenerator, TrafficPattern
from repro.sim.core import Simulator
from repro.sim.rng import RandomStreams
from repro.sim.stats import Sampler


@dataclass(frozen=True)
class NocMetrics:
    """Results of one traffic simulation."""

    topology_name: str
    pattern: str
    offered_load: float          # flits/terminal/cycle offered
    accepted_load: float         # flits/terminal/cycle delivered
    avg_latency: float           # cycles, measured packets only
    max_latency: float
    min_latency: float
    delivered_packets: int
    injected_packets: int
    avg_link_utilization: float
    peak_link_utilization: float
    wiring_cost: float
    saturated: bool

    def as_row(self) -> dict:
        """Flat dict for tabular reporting."""
        return {
            "topology": self.topology_name,
            "pattern": self.pattern,
            "offered": round(self.offered_load, 4),
            "accepted": round(self.accepted_load, 4),
            "avg_latency": round(self.avg_latency, 2),
            "max_latency": round(self.max_latency, 2),
            "peak_link_util": round(self.peak_link_utilization, 3),
            "saturated": self.saturated,
        }


def simulate_traffic(
    topology: Topology,
    pattern: TrafficPattern,
    offered_load: float,
    duration: float = 5000.0,
    warmup: float = 1000.0,
    packet_size: int = 4,
    router_delay: float = 2.0,
    seed: int = 1,
    saturation_latency_factor: float = 8.0,
    mode: str = "des",
) -> NocMetrics:
    """Run one (topology, pattern, load) point and collect metrics.

    Packets injected during the first *warmup* cycles load the network
    but are excluded from latency statistics.  The run is flagged
    ``saturated`` when average measured latency exceeds
    *saturation_latency_factor* times the zero-load latency or when the
    network delivers markedly less than was offered.

    ``mode`` selects the evaluation backend: ``"des"`` is the
    packet-granular event simulation; ``"flow"`` computes the same
    metrics in closed form from per-(src, dst) demand matrices
    (:mod:`repro.noc.flow`) — orders of magnitude faster, validated
    against DES within the envelope documented in
    ``docs/performance.md``.
    """
    if mode == "flow":
        from repro.noc.flow import flow_traffic_metrics

        return flow_traffic_metrics(
            topology,
            pattern,
            offered_load,
            duration=duration,
            warmup=warmup,
            packet_size=packet_size,
            router_delay=router_delay,
            seed=seed,
            saturation_latency_factor=saturation_latency_factor,
        )
    if mode != "des":
        raise ValueError(f"unknown NoC mode {mode!r}; use 'des' or 'flow'")
    if warmup >= duration:
        raise ValueError(f"warmup {warmup} must be shorter than duration {duration}")
    sim = Simulator()
    network = Network(sim, topology, router_delay=router_delay)
    streams = RandomStreams(seed=seed)
    generator = TrafficGenerator(
        network,
        pattern,
        offered_load,
        packet_size=packet_size,
        streams=streams,
    )
    generator.start(duration)
    sim.run(until=duration)
    measured = Sampler("measured_latency")
    delivered = 0
    for packet in generator.sent:
        if packet.delivered_at is None:
            continue
        delivered += 1
        if packet.injected_at >= warmup:
            measured.add(packet.latency)
    terminals = topology.num_terminals
    window = duration
    accepted = network.delivered_flits / (terminals * window)
    # Zero-load reference: a representative medium-distance pair.
    ref = network.zero_load_latency(0, terminals // 2, packet_size)
    avg_latency = measured.mean if measured.count else float("inf")
    saturated = (
        avg_latency > saturation_latency_factor * ref
        or accepted < 0.75 * min(offered_load, 1.0)
    )
    return NocMetrics(
        topology_name=topology.name,
        pattern=pattern.value,
        offered_load=offered_load,
        accepted_load=accepted,
        avg_latency=avg_latency,
        max_latency=measured.maximum if measured.count else float("inf"),
        min_latency=measured.minimum if measured.count else float("inf"),
        delivered_packets=delivered,
        injected_packets=len(generator.sent),
        avg_link_utilization=network.average_link_utilization(),
        peak_link_utilization=network.peak_link_utilization(),
        wiring_cost=topology.wiring_cost(),
        saturated=saturated,
    )


def saturation_load(
    topology: Topology,
    pattern: TrafficPattern,
    loads: Optional[list[float]] = None,
    **kwargs,
) -> float:
    """Lowest offered load at which the network saturates.

    Sweeps *loads* (default 0.05..1.0) and returns the first saturated
    point, or ``inf`` if none saturates.
    """
    if loads is None:
        loads = [round(0.05 * i, 2) for i in range(1, 21)]
    for load in loads:
        metrics = simulate_traffic(topology, pattern, load, **kwargs)
        if metrics.saturated:
            return load
    return float("inf")
