"""NoC topology builders.

A :class:`Topology` is a directed multigraph of routers plus a mapping
from *terminals* (the network interfaces that processors, memories and
I/O blocks plug into) to their attachment routers.  Builders cover the
spectrum the paper names in Section 6.1 — "ranging from bus, ring, tree
to full-crossbar" — plus the 2-D mesh/torus used by most published NoCs
and the SPIN fat tree developed with UPMC/LIP6 (Section 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Tuple


class TopologyKind(Enum):
    """Supported interconnect topologies."""

    BUS = "bus"
    RING = "ring"
    MESH = "mesh"
    TORUS = "torus"
    TREE = "tree"
    FAT_TREE = "fat_tree"
    CROSSBAR = "crossbar"
    STAR = "star"


@dataclass
class Topology:
    """A router graph with terminal attachment points.

    Attributes
    ----------
    kind:
        Which family this topology belongs to.
    num_routers:
        Routers are integers ``0 .. num_routers-1``.
    edges:
        Directed router-to-router links as ``(u, v)`` pairs.  Links are
        unidirectional; bidirectional connectivity needs both pairs.
    terminal_router:
        ``terminal_router[t]`` is the router terminal ``t`` attaches to.
    name:
        Human-readable label for reports.
    """

    kind: TopologyKind
    num_routers: int
    edges: List[Tuple[int, int]]
    terminal_router: List[int]
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_routers < 1:
            raise ValueError(f"topology needs >=1 router, got {self.num_routers}")
        for u, v in self.edges:
            if not (0 <= u < self.num_routers and 0 <= v < self.num_routers):
                raise ValueError(f"edge ({u},{v}) out of range")
            if u == v:
                raise ValueError(f"self-loop at router {u}")
        for t, r in enumerate(self.terminal_router):
            if not 0 <= r < self.num_routers:
                raise ValueError(f"terminal {t} attached to bad router {r}")
        if not self.name:
            self.name = f"{self.kind.value}-{self.num_terminals}"

    @property
    def num_terminals(self) -> int:
        return len(self.terminal_router)

    @property
    def num_links(self) -> int:
        return len(self.edges)

    def neighbors(self, router: int) -> List[int]:
        """Routers reachable from *router* over one link."""
        return [v for (u, v) in self.edges if u == router]

    def adjacency(self) -> Dict[int, List[int]]:
        adj: Dict[int, List[int]] = {r: [] for r in range(self.num_routers)}
        for u, v in self.edges:
            adj[u].append(v)
        return adj

    def degree_histogram(self) -> Dict[int, int]:
        """Out-degree histogram, a proxy for router port-count cost."""
        adj = self.adjacency()
        hist: Dict[int, int] = {}
        for r in range(self.num_routers):
            d = len(adj[r])
            hist[d] = hist.get(d, 0) + 1
        return hist

    def wiring_cost(self) -> float:
        """Relative wiring cost: links weighted by router radix squared.

        Router area grows roughly with the square of its port count
        (crossbar inside each router), links linearly.
        """
        adj = self.adjacency()
        in_deg: Dict[int, int] = {r: 0 for r in range(self.num_routers)}
        for _u, v in self.edges:
            in_deg[v] += 1
        router_cost = sum(
            (len(adj[r]) + in_deg[r] + 2) ** 2 / 4.0  # +2 for the local port
            for r in range(self.num_routers)
        )
        return len(self.edges) + router_cost


def _bidir(pairs: Iterable[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Expand undirected pairs to both directed edges."""
    out: List[Tuple[int, int]] = []
    for u, v in pairs:
        out.append((u, v))
        out.append((v, u))
    return out


def bus(terminals: int) -> Topology:
    """A shared bus: one central arbiter 'router' all terminals share.

    All traffic serializes through the single router, so the bus
    saturates first as load grows — the paper's motivation for moving
    "away from traditional shared buses".
    """
    if terminals < 2:
        raise ValueError(f"bus needs >=2 terminals, got {terminals}")
    return Topology(
        kind=TopologyKind.BUS,
        num_routers=1,
        edges=[],
        terminal_router=[0] * terminals,
        name=f"bus-{terminals}",
    )


def ring(terminals: int) -> Topology:
    """A bidirectional ring, one router per terminal."""
    if terminals < 3:
        raise ValueError(f"ring needs >=3 terminals, got {terminals}")
    pairs = [(i, (i + 1) % terminals) for i in range(terminals)]
    return Topology(
        kind=TopologyKind.RING,
        num_routers=terminals,
        edges=_bidir(pairs),
        terminal_router=list(range(terminals)),
        name=f"ring-{terminals}",
    )


def mesh(terminals: int, width: int | None = None) -> Topology:
    """A 2-D mesh; *terminals* must form a rectangle.

    If *width* is omitted the squarest factorization is chosen.
    """
    width, height = _grid_dims(terminals, width)
    pairs = []
    for y in range(height):
        for x in range(width):
            i = y * width + x
            if x + 1 < width:
                pairs.append((i, i + 1))
            if y + 1 < height:
                pairs.append((i, i + width))
    return Topology(
        kind=TopologyKind.MESH,
        num_routers=terminals,
        edges=_bidir(pairs),
        terminal_router=list(range(terminals)),
        name=f"mesh-{width}x{height}",
    )


def torus(terminals: int, width: int | None = None) -> Topology:
    """A 2-D torus (mesh with wraparound links)."""
    width, height = _grid_dims(terminals, width)
    if width < 3 or height < 3:
        raise ValueError(
            f"torus needs >=3 routers per dimension, got {width}x{height}"
        )
    pairs = []
    for y in range(height):
        for x in range(width):
            i = y * width + x
            pairs.append((i, y * width + (x + 1) % width))
            pairs.append((i, ((y + 1) % height) * width + x))
    return Topology(
        kind=TopologyKind.TORUS,
        num_routers=terminals,
        edges=_bidir(pairs),
        terminal_router=list(range(terminals)),
        name=f"torus-{width}x{height}",
    )


def tree(terminals: int, arity: int = 2) -> Topology:
    """A balanced tree with terminals at the leaves.

    Internal routers form the trunk; the root is a bandwidth bottleneck
    (fixed by the fat tree below).
    """
    if terminals < 2:
        raise ValueError(f"tree needs >=2 terminals, got {terminals}")
    if arity < 2:
        raise ValueError(f"tree arity must be >=2, got {arity}")
    levels = max(1, math.ceil(math.log(terminals, arity)))
    leaves = arity ** levels
    # Internal nodes of a complete arity-ary tree with `leaves` leaves.
    internal = (leaves - 1) // (arity - 1)
    pairs = []
    for parent in range(internal):
        for c in range(arity):
            child = parent * arity + 1 + c
            if child < internal + leaves:
                pairs.append((parent, child))
    terminal_router = [internal + (t % leaves) for t in range(terminals)]
    # Leaf routers are 'internal + leaf_index'; but children numbering maps
    # leaves into [internal, internal+leaves). Re-map edges accordingly:
    # in the heap numbering, nodes >= internal are leaves already.
    return Topology(
        kind=TopologyKind.TREE,
        num_routers=internal + leaves,
        edges=_bidir(pairs),
        terminal_router=terminal_router,
        name=f"tree-{arity}ary-{terminals}",
    )


def fat_tree(terminals: int, arity: int = 4) -> Topology:
    """A SPIN-style fat tree: full bandwidth preserved toward the root.

    Level 0 holds ``terminals/arity`` leaf routers, each serving *arity*
    terminals.  Each level above replicates routers so aggregate
    bandwidth is constant per level; every router connects to every
    router of the group above it, mirroring the SPIN micro-network the
    paper co-developed with UPMC/LIP6 [8].
    """
    if terminals < 2:
        raise ValueError(f"fat tree needs >=2 terminals, got {terminals}")
    if arity < 2:
        raise ValueError(f"fat tree arity must be >=2, got {arity}")
    groups = max(2, -(-terminals // arity))
    # Simple 2-level SPIN: leaves plus a root stage of `groups//2` routers.
    leaf_routers = list(range(groups))
    root_count = max(1, groups // 2)
    root_routers = list(range(groups, groups + root_count))
    pairs = []
    for leaf in leaf_routers:
        for root in root_routers:
            pairs.append((leaf, root))
    terminal_router = [min(t // arity, groups - 1) for t in range(terminals)]
    return Topology(
        kind=TopologyKind.FAT_TREE,
        num_routers=groups + root_count,
        edges=_bidir(pairs),
        terminal_router=terminal_router,
        name=f"fat-tree-{terminals}",
    )


def crossbar(terminals: int) -> Topology:
    """A full crossbar: every terminal pair has a dedicated path.

    Modelled as one router per terminal with a complete directed graph;
    the quadratic wiring cost shows up in :meth:`Topology.wiring_cost`.
    """
    if terminals < 2:
        raise ValueError(f"crossbar needs >=2 terminals, got {terminals}")
    edges = [
        (u, v)
        for u in range(terminals)
        for v in range(terminals)
        if u != v
    ]
    return Topology(
        kind=TopologyKind.CROSSBAR,
        num_routers=terminals,
        edges=edges,
        terminal_router=list(range(terminals)),
        name=f"crossbar-{terminals}",
    )


def star(terminals: int) -> Topology:
    """A star: all terminals hang off one central router."""
    if terminals < 2:
        raise ValueError(f"star needs >=2 terminals, got {terminals}")
    center = terminals
    pairs = [(i, center) for i in range(terminals)]
    return Topology(
        kind=TopologyKind.STAR,
        num_routers=terminals + 1,
        edges=_bidir(pairs),
        terminal_router=list(range(terminals)),
        name=f"star-{terminals}",
    )


def make_topology(kind: TopologyKind | str, terminals: int) -> Topology:
    """Build a topology by kind name with default parameters."""
    if isinstance(kind, str):
        kind = TopologyKind(kind)
    builders = {
        TopologyKind.BUS: bus,
        TopologyKind.RING: ring,
        TopologyKind.MESH: mesh,
        TopologyKind.TORUS: torus,
        TopologyKind.TREE: tree,
        TopologyKind.FAT_TREE: fat_tree,
        TopologyKind.CROSSBAR: crossbar,
        TopologyKind.STAR: star,
    }
    return builders[kind](terminals)


def _grid_dims(terminals: int, width: int | None) -> Tuple[int, int]:
    if terminals < 2:
        raise ValueError(f"grid needs >=2 terminals, got {terminals}")
    if width is None:
        width = int(math.sqrt(terminals))
        while terminals % width:
            width -= 1
    if width < 1 or terminals % width:
        raise ValueError(f"{terminals} terminals do not fill width {width}")
    return width, terminals // width
