"""Network-on-chip simulator.

Section 6.1 of the paper advocates networks-on-chip as the MP-SoC
interconnect and notes that "there is still much remaining work to be
done to characterize the various topologies — ranging from bus, ring,
tree to full-crossbar — and their effectiveness for different
application domains".  This package does that characterization:

* :mod:`repro.noc.topology` — builders for bus, ring, mesh, torus,
  binary tree, SPIN-style fat tree, full crossbar and star topologies;
* :mod:`repro.noc.routing` — deterministic minimal routing tables;
* :mod:`repro.noc.network` — the event-driven cut-through network model
  with per-link serialization (contention and saturation are emergent);
* :mod:`repro.noc.traffic` — synthetic traffic patterns (uniform,
  transpose, bit-complement, hotspot, neighbour);
* :mod:`repro.noc.metrics` — latency/throughput measurement;
* :mod:`repro.noc.flow` — the batched flow-level (analytic) mode:
  demand matrices pushed through the shared routing tables, producing
  the same metrics as the event model without per-hop events;
* :mod:`repro.noc.ocp` — an OCP-IP-style request/response socket layer
  used by the processor and DSOC runtimes.
"""

from repro.noc.packet import Packet
from repro.noc.topology import (
    Topology,
    TopologyKind,
    bus,
    crossbar,
    fat_tree,
    make_topology,
    mesh,
    ring,
    star,
    torus,
    tree,
)
from repro.noc.routing import RoutingTable, build_routing, cached_routing
from repro.noc.link import Link
from repro.noc.network import Network
from repro.noc.traffic import TrafficGenerator, TrafficPattern
from repro.noc.metrics import NocMetrics, simulate_traffic
from repro.noc.flow import FlowModel, demand_matrix, flow_traffic_metrics

__all__ = [
    "FlowModel",
    "Link",
    "Network",
    "demand_matrix",
    "flow_traffic_metrics",
    "NocMetrics",
    "Packet",
    "RoutingTable",
    "Topology",
    "TopologyKind",
    "TrafficGenerator",
    "TrafficPattern",
    "build_routing",
    "bus",
    "cached_routing",
    "crossbar",
    "fat_tree",
    "make_topology",
    "mesh",
    "ring",
    "simulate_traffic",
    "star",
    "torus",
    "tree",
]
