"""Synthetic NoC traffic patterns and generators.

The standard patterns of the NoC literature, used by experiment E10 to
characterize topologies "for different application domains": uniform
random (general-purpose), transpose and bit-complement (adversarial,
FFT/corner-turn-like), hotspot (shared memory controller), and nearest
neighbour (pipelined signal processing).
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional

from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.sim.core import Simulator, Timeout
from repro.sim.rng import RandomStreams


class TrafficPattern(Enum):
    """Destination-selection policies."""

    UNIFORM = "uniform"
    TRANSPOSE = "transpose"
    BIT_COMPLEMENT = "bit_complement"
    HOTSPOT = "hotspot"
    NEIGHBOR = "neighbor"

    def destination(
        self,
        src: int,
        terminals: int,
        rng,
        hotspot: int = 0,
        hotspot_fraction: float = 0.5,
    ) -> int:
        """Pick a destination terminal for a packet from *src*."""
        if self is TrafficPattern.UNIFORM:
            dst = rng.randrange(terminals - 1)
            return dst if dst < src else dst + 1
        if self is TrafficPattern.TRANSPOSE:
            bits = max(1, (terminals - 1).bit_length())
            half = bits // 2
            if half == 0:
                return (src + 1) % terminals
            lo = src & ((1 << half) - 1)
            hi = src >> half
            dst = (lo << (bits - half)) | hi
            dst %= terminals
            return dst if dst != src else (src + 1) % terminals
        if self is TrafficPattern.BIT_COMPLEMENT:
            bits = max(1, (terminals - 1).bit_length())
            dst = (~src) & ((1 << bits) - 1)
            dst %= terminals
            return dst if dst != src else (src + 1) % terminals
        if self is TrafficPattern.HOTSPOT:
            if rng.random() < hotspot_fraction and src != hotspot:
                return hotspot
            dst = rng.randrange(terminals - 1)
            return dst if dst < src else dst + 1
        if self is TrafficPattern.NEIGHBOR:
            return (src + 1) % terminals
        raise ValueError(f"unhandled pattern {self}")  # pragma: no cover


class TrafficGenerator:
    """Open-loop packet injection at a fixed offered load.

    Parameters
    ----------
    network:
        Target network.
    pattern:
        Destination-selection policy.
    offered_load:
        Flits per terminal per cycle (0 < load <= injection bandwidth).
    packet_size:
        Flits per packet.
    streams:
        Seeded RNG factory; each terminal gets its own stream.
    warmup:
        Packets injected before *measure_from* are excluded from latency
        statistics by the metrics layer (they still load the network).
    """

    def __init__(
        self,
        network: Network,
        pattern: TrafficPattern,
        offered_load: float,
        packet_size: int = 4,
        streams: Optional[RandomStreams] = None,
        hotspot: int = 0,
        hotspot_fraction: float = 0.5,
    ) -> None:
        if offered_load <= 0:
            raise ValueError(f"offered load must be positive, got {offered_load}")
        if packet_size < 1:
            raise ValueError(f"packet size must be >=1, got {packet_size}")
        self.network = network
        self.pattern = pattern
        self.offered_load = offered_load
        self.packet_size = packet_size
        self.streams = streams or RandomStreams(seed=1)
        self.hotspot = hotspot
        self.hotspot_fraction = hotspot_fraction
        self.sent: List[Packet] = []

    def start(self, duration: float) -> None:
        """Spawn one injection process per terminal for *duration* cycles."""
        sim = self.network.sim
        terminals = self.network.topology.num_terminals
        mean_gap = self.packet_size / self.offered_load
        for t in range(terminals):
            rng = self.streams.get(f"traffic.{t}")
            sim.spawn(
                self._inject(sim, t, terminals, mean_gap, duration, rng),
                name=f"traffic-{t}",
            )

    def _inject(self, sim: Simulator, src: int, terminals: int, mean_gap: float,
                duration: float, rng):
        end = sim.now + duration
        while True:
            gap = rng.expovariate(1.0 / mean_gap)
            yield Timeout(gap)
            if sim.now >= end:
                return
            dst = self.pattern.destination(
                src, terminals, rng, self.hotspot, self.hotspot_fraction
            )
            packet = Packet(src=src, dst=dst, size_flits=self.packet_size)
            self.sent.append(packet)
            self.network.send(packet)
