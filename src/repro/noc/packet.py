"""NoC packet representation."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

_packet_ids = itertools.count()


@dataclass
class Packet:
    """A multi-flit packet travelling through the network.

    Attributes
    ----------
    src, dst:
        Terminal (network-interface) indices.
    size_flits:
        Packet length in flits; the header flit leads and the body
        pipelines behind it (cut-through switching).
    injected_at:
        Simulation time at which the packet entered the source queue.
    delivered_at:
        Set by the network on arrival at the destination terminal.
    hops:
        Router-to-router hops taken.
    payload:
        Opaque user data (the DSOC layer carries marshalled messages
        here).
    """

    src: int
    dst: int
    size_flits: int = 4
    injected_at: float = 0.0
    delivered_at: Optional[float] = None
    hops: int = 0
    payload: Any = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size_flits < 1:
            raise ValueError(f"packet needs >=1 flit, got {self.size_flits}")
        if self.src < 0 or self.dst < 0:
            raise ValueError(f"negative terminal index ({self.src}->{self.dst})")

    @property
    def latency(self) -> float:
        """End-to-end latency; only valid after delivery."""
        if self.delivered_at is None:
            raise ValueError(f"packet {self.packet_id} not yet delivered")
        return self.delivered_at - self.injected_at

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = f"@{self.delivered_at}" if self.delivered_at is not None else "in-flight"
        return (
            f"<Packet #{self.packet_id} {self.src}->{self.dst} "
            f"{self.size_flits}f {status}>"
        )
