"""Deterministic minimal routing with equal-cost path spreading.

Routing tables are precomputed with breadth-first search.  Where several
minimal next hops exist (fat trees, tori, crossbars), the table keeps
them all and spreads *flows* across them with a deterministic hash of
(source, destination), i.e. per-flow ECMP: a given terminal pair always
uses the same path (preserving in-order delivery) while aggregate
traffic uses the full bisection — the property SPIN-style fat trees are
built for.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.noc.topology import Topology

#: Knuth multiplicative hash constant for flow spreading.
_HASH_MULT = 2654435761


def _flow_hash(flow: int, node: int, dst: int) -> int:
    value = (flow * _HASH_MULT) ^ (node * 40503) ^ (dst * 65599)
    return (value >> 4) & 0x7FFFFFFF


@dataclass
class RoutingTable:
    """Minimal next-hop choice sets for every (router, destination)."""

    topology: Topology
    next_hops: List[List[List[int]]]  # next_hops[router][dst] -> choices
    distance: List[List[int]]         # hop counts

    def route(self, src_router: int, dst_router: int, flow: int = 0) -> List[int]:
        """Full router path, inclusive; *flow* selects among ECMP paths."""
        if src_router == dst_router:
            return [src_router]
        path = [src_router]
        current = src_router
        limit = self.topology.num_routers + 1
        while current != dst_router:
            choices = self.next_hops[current][dst_router]
            if not choices:
                raise ValueError(
                    f"no route from router {src_router} to {dst_router}"
                )
            nxt = choices[_flow_hash(flow, current, dst_router) % len(choices)]
            path.append(nxt)
            current = nxt
            if len(path) > limit:  # pragma: no cover - defensive
                raise RuntimeError("routing loop detected")
        return path

    def next_hop_choices(self, router: int, dst_router: int) -> List[int]:
        """All minimal next hops from *router* toward *dst_router*."""
        return list(self.next_hops[router][dst_router])

    def hops(self, src_router: int, dst_router: int) -> int:
        """Hop count between two routers (0 when identical)."""
        d = self.distance[src_router][dst_router]
        if d < 0:
            raise ValueError(f"routers {src_router},{dst_router} disconnected")
        return d

    def average_distance(self) -> float:
        """Mean hop distance over distinct terminal attachment pairs."""
        topo = self.topology
        total = 0
        count = 0
        for src_t in range(topo.num_terminals):
            for dst_t in range(topo.num_terminals):
                if src_t == dst_t:
                    continue
                total += self.distance[topo.terminal_router[src_t]][
                    topo.terminal_router[dst_t]
                ]
                count += 1
        return total / count if count else 0.0

    def diameter(self) -> int:
        """Maximum finite hop distance in the router graph."""
        return max(d for row in self.distance for d in row if d >= 0)

    def path_diversity(self, src_router: int, dst_router: int) -> int:
        """Number of minimal first hops (ECMP width at the source)."""
        if src_router == dst_router:
            return 0
        return len(self.next_hops[src_router][dst_router])


def build_routing(topology: Topology) -> RoutingTable:
    """BFS all-pairs minimal routing keeping every equal-cost next hop."""
    n = topology.num_routers
    rev: Dict[int, List[int]] = {r: [] for r in range(n)}
    for u, v in topology.edges:
        rev[v].append(u)
    for r in rev:
        rev[r] = sorted(rev[r])
    next_hops: List[List[List[int]]] = [
        [[] for _ in range(n)] for _ in range(n)
    ]
    distance = [[-1] * n for _ in range(n)]
    for dst in range(n):
        dist: List[Optional[int]] = [None] * n
        dist[dst] = 0
        queue = deque([dst])
        while queue:
            node = queue.popleft()
            for prev in rev[node]:
                if dist[prev] is None:
                    dist[prev] = dist[node] + 1
                    next_hops[prev][dst].append(node)
                    queue.append(prev)
                elif dist[prev] == dist[node] + 1:
                    next_hops[prev][dst].append(node)
        for r in range(n):
            distance[r][dst] = -1 if dist[r] is None else dist[r]
            next_hops[r][dst].sort()
    return RoutingTable(
        topology=topology, next_hops=next_hops, distance=distance
    )
