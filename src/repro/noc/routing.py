"""Deterministic minimal routing with equal-cost path spreading.

Routing tables are precomputed with breadth-first search.  Where several
minimal next hops exist (fat trees, tori, crossbars), the table keeps
them all and spreads *flows* across them with a deterministic hash of
(source, destination), i.e. per-flow ECMP: a given terminal pair always
uses the same path (preserving in-order delivery) while aggregate
traffic uses the full bisection — the property SPIN-style fat trees are
built for.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.noc.topology import Topology

#: Knuth multiplicative hash constant for flow spreading.
_HASH_MULT = 2654435761

#: Terminal-pair -> flow id derivation shared by every transport mode:
#: ``flow = src * FLOW_ID_MULT + dst``.  The DES network, the flow-mode
#: fast path and the analytic flow model must all use this constant so
#: their ECMP path choices (and therefore link accounting) coincide.
FLOW_ID_MULT = 65537


def _flow_hash(flow: int, node: int, dst: int) -> int:
    value = (flow * _HASH_MULT) ^ (node * 40503) ^ (dst * 65599)
    return (value >> 4) & 0x7FFFFFFF


@dataclass
class RoutingTable:
    """Minimal next-hop choice sets for every (router, destination)."""

    topology: Topology
    next_hops: List[List[List[int]]]  # next_hops[router][dst] -> choices
    distance: List[List[int]]         # hop counts
    #: memoized route() paths keyed by (src, dst, flow); the path walk
    #: is deterministic, so each flow's path is computed exactly once.
    _path_cache: Dict[Tuple[int, int, int], List[int]] = field(
        default_factory=dict, repr=False, compare=False
    )
    _avg_distance: Optional[float] = field(
        default=None, repr=False, compare=False
    )

    def route(self, src_router: int, dst_router: int, flow: int = 0) -> List[int]:
        """Full router path, inclusive; *flow* selects among ECMP paths.

        Paths are memoized per (src, dst, flow); treat the returned
        list as read-only.
        """
        key = (src_router, dst_router, flow)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        if src_router == dst_router:
            path = [src_router]
            self._path_cache[key] = path
            return path
        path = [src_router]
        current = src_router
        limit = self.topology.num_routers + 1
        while current != dst_router:
            choices = self.next_hops[current][dst_router]
            if not choices:
                raise ValueError(
                    f"no route from router {src_router} to {dst_router}"
                )
            nxt = choices[_flow_hash(flow, current, dst_router) % len(choices)]
            path.append(nxt)
            current = nxt
            if len(path) > limit:  # pragma: no cover - defensive
                raise RuntimeError("routing loop detected")
        self._path_cache[key] = path
        return path

    def next_hop_choices(self, router: int, dst_router: int) -> List[int]:
        """All minimal next hops from *router* toward *dst_router*."""
        return list(self.next_hops[router][dst_router])

    def hops(self, src_router: int, dst_router: int) -> int:
        """Hop count between two routers (0 when identical)."""
        d = self.distance[src_router][dst_router]
        if d < 0:
            raise ValueError(f"routers {src_router},{dst_router} disconnected")
        return d

    def average_distance(self) -> float:
        """Mean hop distance over distinct terminal attachment pairs.

        Precomputed as an O(routers^2) reduction over terminal counts
        per router (rather than the naive O(terminals^2) pair walk) and
        memoized; distances are integers, so the reduced sum is exactly
        the pairwise sum.
        """
        if self._avg_distance is not None:
            return self._avg_distance
        topo = self.topology
        terminals_at: Dict[int, int] = {}
        for router in topo.terminal_router:
            terminals_at[router] = terminals_at.get(router, 0) + 1
        total = 0
        for src_r, src_n in terminals_at.items():
            row = self.distance[src_r]
            for dst_r, dst_n in terminals_at.items():
                total += src_n * dst_n * row[dst_r]
        # Same-terminal pairs are excluded; they sit on one router at
        # distance 0, so only the pair count needs correcting.
        count = topo.num_terminals * (topo.num_terminals - 1)
        self._avg_distance = total / count if count else 0.0
        return self._avg_distance

    def diameter(self) -> int:
        """Maximum finite hop distance in the router graph."""
        return max(d for row in self.distance for d in row if d >= 0)

    def path_diversity(self, src_router: int, dst_router: int) -> int:
        """Number of minimal first hops (ECMP width at the source)."""
        if src_router == dst_router:
            return 0
        return len(self.next_hops[src_router][dst_router])


def build_routing(topology: Topology) -> RoutingTable:
    """BFS all-pairs minimal routing keeping every equal-cost next hop."""
    n = topology.num_routers
    rev: Dict[int, List[int]] = {r: [] for r in range(n)}
    for u, v in topology.edges:
        rev[v].append(u)
    for r in rev:
        rev[r] = sorted(rev[r])
    next_hops: List[List[List[int]]] = [
        [[] for _ in range(n)] for _ in range(n)
    ]
    distance = [[-1] * n for _ in range(n)]
    for dst in range(n):
        dist: List[Optional[int]] = [None] * n
        dist[dst] = 0
        queue = deque([dst])
        while queue:
            node = queue.popleft()
            for prev in rev[node]:
                if dist[prev] is None:
                    dist[prev] = dist[node] + 1
                    next_hops[prev][dst].append(node)
                    queue.append(prev)
                elif dist[prev] == dist[node] + 1:
                    next_hops[prev][dst].append(node)
        for r in range(n):
            distance[r][dst] = -1 if dist[r] is None else dist[r]
            next_hops[r][dst].sort()
    return RoutingTable(
        topology=topology, next_hops=next_hops, distance=distance
    )


#: structural-key -> RoutingTable memo for :func:`cached_routing`.
_ROUTING_CACHE: Dict[tuple, RoutingTable] = {}
_ROUTING_CACHE_MAX = 128


def _topology_key(topology: Topology) -> tuple:
    """Structural identity of a topology (Topology is mutable)."""
    return (
        topology.kind,
        topology.num_routers,
        tuple(topology.edges),
        tuple(topology.terminal_router),
    )


def cached_routing(topology: Topology) -> RoutingTable:
    """A shared, memoized routing table for *topology*.

    BFS-all-pairs table construction is the dominant setup cost of
    every NoC model; structurally identical topologies (same kind,
    router count, edges and terminal attachments) share one table, so
    sweeps over (load, mapper, seed) build routing exactly once per
    topology.  The returned table is shared — treat it as read-only.
    """
    key = _topology_key(topology)
    table = _ROUTING_CACHE.get(key)
    if table is None:
        if len(_ROUTING_CACHE) >= _ROUTING_CACHE_MAX:
            _ROUTING_CACHE.clear()
        table = build_routing(topology)
        _ROUTING_CACHE[key] = table
    return table
