"""OCP-style socket layer: request/response transactions over the NoC.

The paper (Section 6.1) uses "the proposed OCP-IP standard in our
MP-SoC platform experiments" as the socket between IP blocks and the
interconnect.  This module provides that abstraction: a
:class:`OcpMaster` issues split-transaction reads/writes addressed to a
target terminal; an :class:`OcpSlave` services them with a configurable
access latency; responses route back over the network.  The processor
and DSOC runtimes are written against these sockets, so they run
unchanged on any topology.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.sim.core import Event, Simulator

_txn_ids = itertools.count()


@dataclass
class Transaction:
    """One split OCP transaction."""

    txn_id: int
    kind: str              # "read" | "write" | "message"
    initiator: int         # master terminal
    target: int            # slave terminal
    address: int
    data: Any = None
    response: Any = None


class OcpMaster:
    """Initiator socket bound to one network terminal.

    ``yield master.read(target, addr)`` suspends the calling process
    until the response packet returns; the yielded value is the slave's
    response data.  Any number of transactions may be outstanding —
    the split-transaction behaviour Section 6.2 calls out as a latency-
    hiding requirement.
    """

    def __init__(self, network: Network, terminal: int, name: str = "") -> None:
        self.network = network
        self.sim: Simulator = network.sim
        self.terminal = terminal
        self.name = name or f"master{terminal}"
        self._pending: Dict[int, Event] = {}
        self.completed = 0
        network.attach(terminal, self._on_packet)

    def read(self, target: int, address: int, size_flits: int = 2) -> Event:
        """Issue a read; returns an event yielding the response data."""
        return self._issue("read", target, address, None, size_flits)

    def write(
        self, target: int, address: int, data: Any, size_flits: int = 4
    ) -> Event:
        """Issue a posted-acknowledged write."""
        return self._issue("write", target, address, data, size_flits)

    def message(self, target: int, data: Any, size_flits: int = 4) -> Event:
        """Send an application message (DSOC uses this)."""
        return self._issue("message", target, 0, data, size_flits)

    def _issue(
        self, kind: str, target: int, address: int, data: Any, size_flits: int
    ) -> Event:
        txn = Transaction(
            txn_id=next(_txn_ids),
            kind=kind,
            initiator=self.terminal,
            target=target,
            address=address,
            data=data,
        )
        done = self.sim.event(f"{self.name}.txn{txn.txn_id}")
        self._pending[txn.txn_id] = done
        packet = Packet(
            src=self.terminal,
            dst=target,
            size_flits=size_flits,
            payload=("req", txn),
        )
        self.network.send(packet)
        return done

    def _on_packet(self, packet: Packet) -> None:
        tag, txn = packet.payload
        if tag != "rsp":
            raise ValueError(
                f"{self.name} received non-response packet {packet!r}"
            )
        done = self._pending.pop(txn.txn_id, None)
        if done is None:
            raise ValueError(
                f"{self.name} got response for unknown txn {txn.txn_id}"
            )
        self.completed += 1
        done.succeed(txn.response)

    @property
    def outstanding(self) -> int:
        """Transactions in flight."""
        return len(self._pending)


class OcpSlave:
    """Target socket: services requests with a fixed access latency.

    *handler(txn)* computes the response payload; default slaves act as
    simple memory (reads return what writes stored).
    """

    def __init__(
        self,
        network: Network,
        terminal: int,
        access_latency: float = 1.0,
        handler: Optional[Callable[[Transaction], Any]] = None,
        response_size_flits: int = 4,
        name: str = "",
    ) -> None:
        if access_latency < 0:
            raise ValueError(f"negative access latency {access_latency}")
        self.network = network
        self.sim: Simulator = network.sim
        self.terminal = terminal
        self.access_latency = access_latency
        self.response_size_flits = response_size_flits
        self.name = name or f"slave{terminal}"
        self._memory: Dict[int, Any] = {}
        self._handler = handler
        self.served = 0
        network.attach(terminal, self._on_packet)

    def _on_packet(self, packet: Packet) -> None:
        tag, txn = packet.payload
        if tag != "req":
            raise ValueError(f"{self.name} received non-request packet {packet!r}")

        def respond() -> None:
            txn.response = self._service(txn)
            self.served += 1
            reply = Packet(
                src=self.terminal,
                dst=txn.initiator,
                size_flits=self.response_size_flits,
                payload=("rsp", txn),
            )
            self.network.send(reply)

        self.sim.schedule(self.access_latency, respond)

    def _service(self, txn: Transaction) -> Any:
        if self._handler is not None:
            return self._handler(txn)
        if txn.kind == "read":
            return self._memory.get(txn.address)
        if txn.kind == "write":
            self._memory[txn.address] = txn.data
            return True
        if txn.kind == "message":
            return True
        raise ValueError(f"unknown transaction kind {txn.kind!r}")
