"""Serialized NoC links.

A :class:`Link` transfers one flit per cycle.  Packets are serviced
first-come-first-served; a packet of S flits holds the link for S
cycles.  Queueing at a busy link is unbounded (virtual cut-through with
elastic buffering), so saturation appears as unbounded waiting time —
exactly the latency blow-up the load-latency experiments look for.
"""

from __future__ import annotations

from repro.sim.stats import Sampler, TimeWeighted


class Link:
    """One directed router-to-router (or terminal) link."""

    __slots__ = (
        "name",
        "flits_per_cycle",
        "_next_free",
        "busy_cycles",
        "flits_carried",
        "packets_carried",
        "wait_stats",
        "queue_depth",
    )

    def __init__(self, name: str, flits_per_cycle: float = 1.0) -> None:
        if flits_per_cycle <= 0:
            raise ValueError(f"link bandwidth must be positive, got {flits_per_cycle}")
        self.name = name
        self.flits_per_cycle = flits_per_cycle
        self._next_free = 0.0
        self.busy_cycles = 0.0
        self.flits_carried = 0
        self.packets_carried = 0
        self.wait_stats = Sampler(f"{name}.wait")
        self.queue_depth = TimeWeighted(f"{name}.queue")

    def reserve(self, now: float, size_flits: int) -> tuple[float, float]:
        """Reserve the link for a packet arriving at *now*.

        Returns ``(start_time, finish_time)``: transmission begins when
        the link frees up and lasts ``size_flits / flits_per_cycle``.
        """
        next_free = self._next_free
        start = now if now > next_free else next_free
        duration = size_flits / self.flits_per_cycle
        finish = start + duration
        self._next_free = finish
        self.busy_cycles += duration
        self.flits_carried += size_flits
        self.packets_carried += 1
        self.wait_stats.add(start - now)
        return start, finish

    def utilization(self, horizon: float) -> float:
        """Busy fraction of the link over ``[0, horizon]``."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / horizon)

    @property
    def next_free(self) -> float:
        """Earliest time a new packet could start transmitting."""
        return self._next_free
