"""The event-driven network model.

The :class:`Network` ties a topology and routing table to the simulation
kernel.  Switching is virtual cut-through: the head flit of a packet
moves hop to hop, each hop costing the router pipeline delay plus link
serialization; contention is resolved FCFS per link.  The model is
packet-granular (one event per hop) rather than flit-granular, which
keeps 64-node, 100k-cycle simulations fast in pure Python while
preserving the latency/throughput behaviour the experiments measure:
zero-load latency, serialization, and saturation under contention.

Bus topologies are special-cased: every transfer holds the single shared
medium for its full serialization time (plus arbitration), which is what
makes the bus saturate first in experiment E10.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.noc.link import Link
from repro.noc.packet import Packet
from repro.noc.routing import FLOW_ID_MULT, RoutingTable, cached_routing
from repro.noc.topology import Topology, TopologyKind
from repro.sim.core import Simulator
from repro.sim.stats import Sampler

DeliveryCallback = Callable[[Packet], None]


class Network:
    """A simulated network-on-chip instance.

    Parameters
    ----------
    sim:
        The simulation kernel to schedule on.
    topology:
        Router graph and terminal attachments.
    router_delay:
        Pipeline cycles a header spends in each router.
    link_bandwidth:
        Flits per cycle per link.
    injection_bandwidth:
        Flits per cycle on the terminal-to-router injection link.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        router_delay: float = 2.0,
        link_bandwidth: float = 1.0,
        injection_bandwidth: float = 1.0,
        mode: str = "des",
    ) -> None:
        if router_delay < 0:
            raise ValueError(f"negative router delay {router_delay}")
        if mode not in ("des", "flow"):
            raise ValueError(f"unknown NoC mode {mode!r}; use 'des' or 'flow'")
        self.mode = mode
        self.sim = sim
        self.topology = topology
        self.routing: RoutingTable = cached_routing(topology)
        self.router_delay = router_delay
        self.links: Dict[Tuple[int, int], Link] = {
            (u, v): Link(f"link{u}->{v}", link_bandwidth)
            for u, v in topology.edges
        }
        # Injection/ejection links between terminals and their routers.
        self.injection: List[Link] = [
            Link(f"inject{t}", injection_bandwidth)
            for t in range(topology.num_terminals)
        ]
        self.ejection: List[Link] = [
            Link(f"eject{t}", injection_bandwidth)
            for t in range(topology.num_terminals)
        ]
        # The shared medium for bus topologies.
        self._bus: Optional[Link] = (
            Link("bus", link_bandwidth)
            if topology.kind is TopologyKind.BUS
            else None
        )
        self.latency = Sampler("packet_latency")
        self.delivered_packets = 0
        self.delivered_flits = 0
        self.injected_packets = 0
        self._receivers: List[Optional[DeliveryCallback]] = [
            None
        ] * topology.num_terminals

    def attach(self, terminal: int, callback: DeliveryCallback) -> None:
        """Register the delivery callback for a terminal."""
        self._check_terminal(terminal)
        self._receivers[terminal] = callback

    def send(
        self,
        packet: Packet,
        on_deliver: Optional[DeliveryCallback] = None,
    ) -> None:
        """Inject *packet* at its source terminal.

        Delivery invokes *on_deliver* (if given) and the destination
        terminal's attached callback (if any).
        """
        self._check_terminal(packet.src)
        self._check_terminal(packet.dst)
        sim = self.sim
        now = sim.now
        packet.injected_at = now
        self.injected_packets += 1
        if self.mode == "flow":
            self._send_flow(packet, on_deliver)
            return
        if self._bus is not None:
            self._send_bus(packet, on_deliver)
            return
        src_router = self.topology.terminal_router[packet.src]
        dst_router = self.topology.terminal_router[packet.dst]
        # Injection link serialization.
        _start, finish = self.injection[packet.src].reserve(
            now, packet.size_flits
        )
        if src_router == dst_router:
            # Straight through one router to the ejection port.
            arrival = finish + self.router_delay
            sim.schedule(
                arrival - now,
                lambda: self._eject(packet, on_deliver),
            )
            return
        flow = packet.src * FLOW_ID_MULT + packet.dst
        path = self.routing.route(src_router, dst_router, flow=flow)
        sim.schedule(
            finish - now,
            lambda: self._hop(packet, path, 0, on_deliver),
        )

    # -- internal forwarding -------------------------------------------------

    def _send_bus(self, packet: Packet, on_deliver: Optional[DeliveryCallback]) -> None:
        assert self._bus is not None
        # Arbitration + full serialization on the shared medium.
        _start, finish = self._bus.reserve(self.sim.now, packet.size_flits)
        arrival = finish + self.router_delay
        packet.hops = 1
        self.sim.schedule(
            arrival - self.sim.now,
            lambda: self._eject(packet, on_deliver),
        )

    def _send_flow(
        self, packet: Packet, on_deliver: Optional[DeliveryCallback]
    ) -> None:
        """Flow-mode transport: one event per packet, no queueing.

        Latency is the zero-load (contention-free) value, so flow mode
        is a valid transport below saturation; per-link flit counters
        are still accounted along the ECMP path, keeping the
        utilization reporting interface identical to DES mode.  See
        :mod:`repro.noc.flow` for the closed-form metrics with
        contention.
        """
        sim = self.sim
        size = packet.size_flits
        if self._bus is not None:
            self._bus.busy_cycles += size / self._bus.flits_per_cycle
            self._bus.flits_carried += size
            self._bus.packets_carried += 1
            packet.hops = 1
            # DES bus delivery serializes on the ejection link too;
            # zero_load_latency historically omits that term, and flow
            # mode matches the *delivered* timing, not the reporter.
            latency = self.zero_load_latency(packet.src, packet.dst, size) + size
        else:
            latency = self.zero_load_latency(packet.src, packet.dst, size)
            src_router = self.topology.terminal_router[packet.src]
            dst_router = self.topology.terminal_router[packet.dst]
            if src_router != dst_router:
                flow = packet.src * FLOW_ID_MULT + packet.dst
                path = self.routing.route(src_router, dst_router, flow=flow)
                hops = len(path) - 1
                packet.hops = hops
                links = self.links
                for i in range(hops):
                    link = links[(path[i], path[i + 1])]
                    link.busy_cycles += size / link.flits_per_cycle
                    link.flits_carried += size
                    link.packets_carried += 1

        def deliver() -> None:
            packet.delivered_at = sim.now
            self.delivered_packets += 1
            self.delivered_flits += size
            self.latency.add(packet.latency)
            if on_deliver is not None:
                on_deliver(packet)
            receiver = self._receivers[packet.dst]
            if receiver is not None:
                receiver(packet)

        sim.schedule(latency, deliver)

    def _hop(
        self,
        packet: Packet,
        path: List[int],
        index: int,
        on_deliver: Optional[DeliveryCallback],
    ) -> None:
        """Header is at ``path[index]``; traverse to the next router."""
        link = self.links[(path[index], path[index + 1])]
        sim = self.sim
        now = sim.now
        # Router pipeline, then wait for the output link, then serialize.
        _start, finish = link.reserve(now + self.router_delay, packet.size_flits)
        packet.hops += 1
        if index + 2 == len(path):
            sim.schedule(
                finish - now,
                lambda: self._eject(packet, on_deliver),
            )
        else:
            sim.schedule(
                finish - now,
                lambda: self._hop(packet, path, index + 1, on_deliver),
            )

    def _eject(self, packet: Packet, on_deliver: Optional[DeliveryCallback]) -> None:
        _start, finish = self.ejection[packet.dst].reserve(
            self.sim.now, packet.size_flits
        )

        def deliver() -> None:
            packet.delivered_at = self.sim.now
            self.delivered_packets += 1
            self.delivered_flits += packet.size_flits
            self.latency.add(packet.latency)
            if on_deliver is not None:
                on_deliver(packet)
            receiver = self._receivers[packet.dst]
            if receiver is not None:
                receiver(packet)

        self.sim.schedule(finish - self.sim.now, deliver)

    def _check_terminal(self, terminal: int) -> None:
        if not 0 <= terminal < self.topology.num_terminals:
            raise ValueError(
                f"terminal {terminal} out of range "
                f"(topology has {self.topology.num_terminals})"
            )

    # -- reporting -----------------------------------------------------------

    def zero_load_latency(self, src: int, dst: int, size_flits: int = 4) -> float:
        """Analytic latency with no contention, in cycles."""
        self._check_terminal(src)
        self._check_terminal(dst)
        if self._bus is not None:
            return size_flits + self.router_delay
        src_router = self.topology.terminal_router[src]
        dst_router = self.topology.terminal_router[dst]
        hops = (
            0
            if src_router == dst_router
            else self.routing.hops(src_router, dst_router)
        )
        # injection serialization + per-hop (router delay + serialization)
        # + final router + ejection serialization
        if hops == 0:
            return size_flits + self.router_delay + size_flits
        return size_flits + hops * (self.router_delay + size_flits) + size_flits

    def average_link_utilization(self) -> float:
        """Mean busy fraction over all router-to-router links."""
        horizon = self.sim.now
        if horizon <= 0:
            return 0.0
        pool = list(self.links.values())
        if self._bus is not None:
            pool = [self._bus]
        if not pool:
            return 0.0
        return sum(link.utilization(horizon) for link in pool) / len(pool)

    def peak_link_utilization(self) -> float:
        """Busy fraction of the most-loaded link (bottleneck indicator)."""
        horizon = self.sim.now
        if horizon <= 0:
            return 0.0
        pool = list(self.links.values())
        if self._bus is not None:
            pool = [self._bus]
        if not pool:
            return 0.0
        return max(link.utilization(horizon) for link in pool)
