"""Observability for the scenario platform: events, metrics, warehouse.

Three small, independent layers — all off by default so the hot paths
PR 2/3 bought stay untouched:

* :mod:`repro.telemetry.events` — structured :class:`Event` records on
  an in-process :class:`EventBus` (correlation ids: job id + spec
  hash), with a JSONL sink for durable traces.  ``emit`` is a cheap
  no-op while nothing is subscribed.
* :mod:`repro.telemetry.metrics` — a registry of counters / gauges /
  histograms with a ``snapshot()`` dict, exposed over the service
  protocol's ``status`` frame and ``repro status``.
* :mod:`repro.telemetry.warehouse` — a sqlite results warehouse
  (single-writer thread, WAL) that the local backend and the cluster
  coordinator write every :class:`ScenarioResult` through, queried by
  ``repro query``.

Two read-path layers compose on top: :mod:`repro.telemetry.spans`
(cross-tier trace spans emitted as ordinary bus events) and
:mod:`repro.telemetry.httpd` (the read-only HTTP/JSON endpoint behind
``repro query --serve``).
"""

from repro.telemetry.events import (  # noqa: F401
    BUS,
    Event,
    EventBus,
    JsonlSink,
    attach_jsonl_sink,
    diag,
    emit,
)
from repro.telemetry.metrics import (  # noqa: F401
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import (  # noqa: F401
    SPAN_KIND,
    emit_span,
    new_span_id,
    new_trace_id,
    span_tree,
    trace_context,
)
from repro.telemetry.warehouse import ResultsWarehouse  # noqa: F401
