"""Read-only HTTP/JSON endpoint over a :class:`ResultsWarehouse`.

``repro query --serve`` for scrapers, dashboards and curl: GET-only,
stdlib-only (``http.server``), answering the same allowlisted
filter/aggregate surface as ``repro query`` — no SQL ever reaches
this layer, field names are validated by the warehouse's allowlists
exactly as on the CLI path.

Every query runs via :meth:`ResultsWarehouse.run_serialized`, i.e. on
the single writer thread, after any pending writes: an endpoint
serving a *live* campaign database (the coordinator writing while
scrapers read) always sees committed, ordered state and never
contends on sqlite locks.  The HTTP layer itself is a
``ThreadingHTTPServer`` — many sockets, but every database touch is
funneled through that one thread.

Routes (all JSON)::

    /            route list
    /results     filtered rows        ?scenario=&status=&job=&limit=...
    /count       {"count": N}         same filters
    /aggregate   grouped aggregates   ?agg=mean:wall_time&group_by=...
    /bench-trend bench_history rows   ?scenario=&limit=
    /stats       warehouse stats
    /metrics     process metrics snapshot + http counters
    /status      endpoint liveness (uptime, request/error counts)
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional
from urllib.parse import parse_qs, urlparse

from repro.telemetry.metrics import METRICS
from repro.telemetry.warehouse import ResultsWarehouse, WarehouseError

__all__ = ["WarehouseHTTP", "DEFAULT_HTTP_PORT"]

DEFAULT_HTTP_PORT = 7470

_ROUTES = (
    "/results", "/count", "/aggregate", "/bench-trend", "/stats",
    "/metrics", "/status",
)

#: query-string names -> warehouse filter kwargs (dashes tolerated so
#: curl invocations read like the CLI flags).
_FILTER_KEYS = {
    "scenario": "scenario",
    "status": "status",
    "job": "job",
    "spec_hash": "spec_hash",
    "spec-hash": "spec_hash",
    "source": "source",
    "code_version": "code_version",
    "code-version": "code_version",
    "since": "since",
    "until": "until",
}


def _filters_from_query(params: Dict[str, list]) -> Dict[str, Any]:
    filters: Dict[str, Any] = {}
    for key, target in _FILTER_KEYS.items():
        values = params.get(key)
        if values:
            filters[target] = values[-1]
    cached = params.get("cached")
    if cached:
        value = cached[-1].strip().lower()
        if value in ("yes", "true", "1"):
            filters["cached"] = True
        elif value in ("no", "false", "0"):
            filters["cached"] = False
        else:
            raise WarehouseError(
                f"cached must be yes/no, got {cached[-1]!r}"
            )
    return filters


def _limit_from_query(params: Dict[str, list]) -> Optional[int]:
    values = params.get("limit")
    if not values:
        return None
    try:
        limit = int(values[-1])
    except ValueError:
        raise WarehouseError(
            f"limit must be an integer, got {values[-1]!r}"
        ) from None
    if limit < 0:
        raise WarehouseError("limit must be >= 0")
    return limit


class _Handler(BaseHTTPRequestHandler):
    # set by WarehouseHTTP on the subclassed handler
    endpoint: "WarehouseHTTP"

    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass  # stdout/stderr belong to the CLI, not per-request noise

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        endpoint = self.endpoint
        endpoint.requests += 1
        parsed = urlparse(self.path)
        route = parsed.path.rstrip("/") or "/"
        params = parse_qs(parsed.query)
        try:
            payload = endpoint.handle(route, params)
        except WarehouseError as exc:
            endpoint.errors += 1
            self._reply(400, {"error": str(exc)})
            return
        except KeyError:
            endpoint.errors += 1
            self._reply(404, {"error": f"no route {route!r}",
                              "routes": list(_ROUTES)})
            return
        except Exception as exc:  # a bug must answer, not hang curl
            endpoint.errors += 1
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        self._reply(200, payload)

    def do_POST(self) -> None:  # noqa: N802
        self._method_not_allowed()

    do_PUT = do_DELETE = do_PATCH = do_POST

    def _method_not_allowed(self) -> None:
        self.endpoint.errors += 1
        self._reply(405, {"error": "read-only endpoint: GET only"})

    def _reply(self, code: int, payload: Any) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        try:
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # scraper went away mid-reply


class WarehouseHTTP:
    """The endpoint: a threading HTTP server bound to one warehouse."""

    def __init__(
        self,
        warehouse: ResultsWarehouse,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        query_timeout_s: float = 30.0,
    ):
        self.warehouse = warehouse
        self.query_timeout_s = query_timeout_s
        self.started_at = time.time()
        self.requests = 0
        self.errors = 0
        handler = type("WarehouseHandler", (_Handler,),
                       {"endpoint": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- request handling ---------------------------------------------------

    def _serialized(self, fn):
        return self.warehouse.run_serialized(
            lambda conn: fn(), timeout_s=self.query_timeout_s
        )

    def handle(self, route: str, params: Dict[str, list]) -> Any:
        """Dispatch one GET; raises KeyError on unknown routes."""
        if route == "/":
            return {"routes": list(_ROUTES), "db": str(self.warehouse.path)}
        if route == "/results":
            filters = _filters_from_query(params)
            limit = _limit_from_query(params)
            rows = self._serialized(
                lambda: self.warehouse.query(limit=limit, **filters)
            )
            return {"results": rows, "count": len(rows)}
        if route == "/count":
            filters = _filters_from_query(params)
            return {"count": self._serialized(
                lambda: self.warehouse.count(**filters)
            )}
        if route == "/aggregate":
            filters = _filters_from_query(params)
            aggs = params.get("agg") or ["count:"]
            group_by = (params.get("group_by")
                        or params.get("group-by") or ["scenario"])[-1]
            rows = self._serialized(
                lambda: self.warehouse.aggregate(
                    aggs, group_by=group_by, **filters
                )
            )
            return {"aggregate": rows, "group_by": group_by}
        if route == "/bench-trend":
            scenario = (params.get("scenario") or [None])[-1]
            limit = _limit_from_query(params)
            rows = self._serialized(
                lambda: self.warehouse.bench_trend(scenario, limit)
            )
            return {"bench_trend": rows}
        if route == "/stats":
            return self._serialized(self.warehouse.stats)
        if route == "/metrics":
            snapshot = METRICS.snapshot()
            snapshot["http"] = {
                "requests": self.requests, "errors": self.errors,
            }
            return snapshot
        if route == "/status":
            return {
                "db": str(self.warehouse.path),
                "uptime_s": round(time.time() - self.started_at, 3),
                "requests": self.requests,
                "errors": self.errors,
                "warehouse": self._serialized(self.warehouse.stats),
            }
        raise KeyError(route)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "WarehouseHTTP":
        """Serve on a daemon thread (tests, embedding)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"warehouse-http:{self.port}", daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI's ``--serve`` path)."""
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> "WarehouseHTTP":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
