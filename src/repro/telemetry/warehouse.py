"""Sqlite results warehouse: every result as a queryable row.

The flat hash-keyed JSON cache answers exactly one question ("have I
run this spec under this code?"); the warehouse answers the rest:
*which scenarios regressed since Tuesday*, *what's the mean wall time
of E10 across the last hundred sweeps*, *did any shard of job-7 fail*.
Every :class:`ScenarioResult` that flows through a
:class:`~repro.service.backend.LocalBackend` or the cluster
coordinator lands here as one row carrying the spec params, code
version, wall time, cache-hit flag and the job-id correlation id.

Concurrency follows the async single-writer idiom: all writes are
enqueued to one daemon thread that owns the only write connection
(WAL mode, batched commits), so producers — the coordinator's event
loop, a server's executor threads, a test's thread pool — never
contend on sqlite locks and rows are never lost to ``SQLITE_BUSY``.
Reads open short-lived connections in the calling thread; WAL lets
them proceed concurrently with the writer.  :meth:`flush` is the
barrier that makes enqueued writes durable and visible.

The writer thread starts lazily on the first write, so opening a
warehouse read-only (``repro query``) costs one schema check.
"""

from __future__ import annotations

import json
import queue
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.engine.results import ScenarioResult

__all__ = ["ResultsWarehouse", "WarehouseError", "parse_when"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    id            INTEGER PRIMARY KEY,
    recorded_at   REAL NOT NULL,
    scenario      TEXT NOT NULL,
    spec_hash     TEXT NOT NULL,
    seed          INTEGER,
    params        TEXT NOT NULL DEFAULT '{}',
    status        TEXT NOT NULL,
    reproduced    INTEGER,
    headline_name  TEXT,
    headline_value REAL,
    wall_time_s   REAL NOT NULL DEFAULT 0.0,
    backend       TEXT,
    cached        INTEGER NOT NULL DEFAULT 0,
    code_version  TEXT NOT NULL DEFAULT '',
    job_id        TEXT NOT NULL DEFAULT '',
    source        TEXT NOT NULL DEFAULT 'local',
    error         TEXT
);
CREATE INDEX IF NOT EXISTS idx_results_scenario
    ON results (scenario, recorded_at);
CREATE INDEX IF NOT EXISTS idx_results_spec_hash ON results (spec_hash);
CREATE INDEX IF NOT EXISTS idx_results_job ON results (job_id);
CREATE TABLE IF NOT EXISTS bench_history (
    id            INTEGER PRIMARY KEY,
    recorded_at   REAL NOT NULL,
    code_version  TEXT NOT NULL,
    scenario      TEXT NOT NULL,
    wall_time_s   REAL NOT NULL,
    workers       INTEGER,
    tags          TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS idx_bench_scenario
    ON bench_history (scenario, recorded_at);
"""

_RESULT_COLUMNS = (
    "recorded_at", "scenario", "spec_hash", "seed", "params", "status",
    "reproduced", "headline_name", "headline_value", "wall_time_s",
    "backend", "cached", "code_version", "job_id", "source", "error",
)
_INSERT_RESULT = (
    f"INSERT INTO results ({', '.join(_RESULT_COLUMNS)}) "
    f"VALUES ({', '.join('?' * len(_RESULT_COLUMNS))})"
)
_INSERT_BENCH = (
    "INSERT INTO bench_history (recorded_at, code_version, scenario, "
    "wall_time_s, workers, tags) VALUES (?, ?, ?, ?, ?, ?)"
)

#: columns ``query``/``aggregate`` accept as filter/agg/group targets —
#: an allowlist, because field names are interpolated into SQL.
_NUMERIC_FIELDS = frozenset(
    {"wall_time_s", "headline_value", "seed", "recorded_at",
     "cached", "reproduced"}
)
_FIELD_ALIASES = {"wall_time": "wall_time_s", "headline": "headline_value"}
_GROUP_FIELDS = frozenset(
    {"scenario", "status", "spec_hash", "job_id", "code_version",
     "backend", "source", "cached"}
)
_AGG_FUNCTIONS = {
    "count": "COUNT", "mean": "AVG", "avg": "AVG",
    "min": "MIN", "max": "MAX", "sum": "SUM",
}


class WarehouseError(RuntimeError):
    """The writer thread died or a query was malformed."""


def parse_when(value: Any) -> float:
    """A ``--since``/``--until`` value to an epoch float.

    Accepts a unix timestamp (int/float/numeric string) or an ISO
    date / datetime (``2026-08-01``, ``2026-08-01T12:30:00``, with a
    trailing ``Z`` tolerated).
    """
    if isinstance(value, (int, float)):
        return float(value)
    text = str(value).strip()
    try:
        return float(text)
    except ValueError:
        pass
    from datetime import datetime, timezone

    iso = text[:-1] + "+00:00" if text.endswith("Z") else text
    try:
        parsed = datetime.fromisoformat(iso)
    except ValueError:
        raise WarehouseError(
            f"cannot parse time {value!r}: need an epoch number or "
            "ISO date/datetime"
        ) from None
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=timezone.utc)
    return parsed.timestamp()


def _result_row(
    result: ScenarioResult,
    *,
    job_id: str,
    source: str,
    code_version: str,
    now: float,
) -> tuple:
    metric_name, metric_value = result.headline_metric()
    numeric = (
        float(metric_value)
        if isinstance(metric_value, (int, float))
        and not isinstance(metric_value, bool)
        else None
    )
    reproduced = result.reproduced
    return (
        now,
        result.name,
        result.spec_hash,
        result.seed,
        json.dumps(result.params, sort_keys=True, default=str),
        result.status,
        None if reproduced is None else int(reproduced),
        metric_name,
        numeric,
        float(result.elapsed_s),
        result.backend,
        int(result.cached),
        result.code_version or code_version,
        job_id or "",
        source,
        result.error,
    )


class ResultsWarehouse:
    """One sqlite file, one writer thread, many concurrent readers."""

    #: writer commits are batched: the thread drains everything queued
    #: before committing once, so a burst of results costs one fsync.
    _QUEUE_MAX = 10_000

    def __init__(self, path: str | Path, *, source: str = "local"):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.source = source
        # the engine's code-version digest stamps rows whose result
        # predates caching (fresh results carry an empty version)
        from repro.engine.cache import compute_code_version

        self.code_version = compute_code_version()
        self._queue: "queue.Queue" = queue.Queue(maxsize=self._QUEUE_MAX)
        self._writer: Optional[threading.Thread] = None
        self._writer_lock = threading.Lock()
        self._writer_error: Optional[BaseException] = None
        self._closed = False
        self._ensure_schema()

    # -- schema / connections ------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(str(self.path), timeout=30.0)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    def _ensure_schema(self) -> None:
        conn = self._connect()
        try:
            conn.executescript(_SCHEMA)
            conn.commit()
        finally:
            conn.close()

    def _read_conn(self) -> sqlite3.Connection:
        conn = sqlite3.connect(str(self.path), timeout=30.0)
        conn.row_factory = sqlite3.Row
        return conn

    # -- the writer thread ---------------------------------------------------

    def _ensure_writer(self) -> None:
        if self._writer is not None and self._writer.is_alive():
            return
        with self._writer_lock:
            if self._writer is not None and self._writer.is_alive():
                return
            if self._writer_error is not None:
                raise WarehouseError(
                    f"warehouse writer died: {self._writer_error!r}"
                )
            self._writer = threading.Thread(
                target=self._writer_loop,
                name=f"warehouse-writer:{self.path.name}",
                daemon=True,
            )
            self._writer.start()

    def _writer_loop(self) -> None:
        try:
            conn = self._connect()
        except sqlite3.Error as exc:
            self._writer_error = exc
            return
        try:
            while True:
                item = self._queue.get()
                batch = [item]
                while True:
                    try:
                        batch.append(self._queue.get_nowait())
                    except queue.Empty:
                        break
                stop = False
                barriers: List[threading.Event] = []
                tasks: List[tuple] = []
                for kind, payload in batch:
                    if kind == "stop":
                        stop = True
                    elif kind == "flush":
                        barriers.append(payload)
                    elif kind == "task":
                        tasks.append(payload)
                    else:  # ("sql", (statement, rows))
                        statement, rows = payload
                        conn.executemany(statement, rows)
                conn.commit()
                for barrier in barriers:
                    barrier.set()
                # serialized tasks run after the batch commit, each in
                # its own try: a failing task (bad query, interrupted
                # vacuum) reports to its caller without killing the
                # writer the way a failed insert batch would
                for fn, holder, done in tasks:
                    try:
                        holder["result"] = fn(conn)
                        conn.commit()
                    except Exception as exc:
                        holder["error"] = exc
                        try:
                            conn.rollback()
                        except sqlite3.Error:
                            pass
                    finally:
                        done.set()
                if stop:
                    return
        except BaseException as exc:  # surface on the next write/flush
            self._writer_error = exc
            # unblock every flusher/task still queued so nothing deadlocks
            try:
                while True:
                    kind, payload = self._queue.get_nowait()
                    if kind == "flush":
                        payload.set()
                    elif kind == "task":
                        payload[1]["error"] = exc
                        payload[2].set()
            except queue.Empty:
                pass
        finally:
            conn.close()

    def _enqueue(self, item: tuple) -> None:
        if self._closed:
            raise WarehouseError("warehouse is closed")
        if self._writer_error is not None:
            raise WarehouseError(
                f"warehouse writer died: {self._writer_error!r}"
            )
        self._ensure_writer()
        self._queue.put(item)

    # -- writes --------------------------------------------------------------

    def record_result(
        self,
        result: ScenarioResult,
        *,
        job_id: str = "",
        source: Optional[str] = None,
    ) -> None:
        """Enqueue one result row (non-blocking unless the queue is full)."""
        self.record_results([result], job_id=job_id, source=source)

    def record_results(
        self,
        results: Iterable[ScenarioResult],
        *,
        job_id: str = "",
        source: Optional[str] = None,
    ) -> int:
        now = time.time()
        rows = [
            _result_row(
                result,
                job_id=job_id,
                source=source or self.source,
                code_version=self.code_version,
                now=now,
            )
            for result in results
        ]
        if rows:
            self._enqueue(("sql", (_INSERT_RESULT, rows)))
        return len(rows)

    def ingest_trajectory(self, path: str | Path) -> int:
        """Load a ``BENCH_TRAJECTORY.json`` history into ``bench_history``.

        Idempotence is by (recorded_at, code_version, scenario): entries
        already present are skipped, so re-ingesting after every bench
        run only appends the new tail.
        """
        data = json.loads(Path(path).read_text())
        entries = data.get("entries") if isinstance(data, dict) else None
        if not isinstance(entries, list):
            raise WarehouseError(
                f"{path} is not a bench trajectory payload"
            )
        conn = self._read_conn()
        try:
            existing = {
                (row["recorded_at"], row["code_version"], row["scenario"])
                for row in conn.execute(
                    "SELECT recorded_at, code_version, scenario "
                    "FROM bench_history"
                )
            }
        finally:
            conn.close()
        rows = []
        for entry in entries:
            if not isinstance(entry, dict):
                continue
            try:
                recorded = parse_when(entry.get("recorded_at", 0))
            except WarehouseError:
                continue
            version = str(entry.get("code_version", ""))
            workers = entry.get("workers")
            tags = ",".join(entry.get("tags") or [])
            per_scenario = entry.get("per_scenario_wall_s") or {}
            for scenario, wall in per_scenario.items():
                if (recorded, version, scenario) in existing:
                    continue
                rows.append(
                    (recorded, version, scenario, float(wall),
                     workers, tags)
                )
        if rows:
            self._enqueue(("sql", (_INSERT_BENCH, rows)))
            self.flush()
        return len(rows)

    def flush(self, timeout_s: float = 30.0) -> None:
        """Block until everything enqueued so far is committed."""
        if self._writer is None or not self._writer.is_alive():
            if self._writer_error is not None:
                raise WarehouseError(
                    f"warehouse writer died: {self._writer_error!r}"
                )
            return  # nothing was ever written
        barrier = threading.Event()
        self._queue.put(("flush", barrier))
        if not barrier.wait(timeout_s):
            raise WarehouseError(
                f"warehouse flush did not complete within {timeout_s:g}s"
            )
        if self._writer_error is not None:
            raise WarehouseError(
                f"warehouse writer died: {self._writer_error!r}"
            )

    def run_serialized(self, fn, timeout_s: float = 60.0) -> Any:
        """Run ``fn(conn)`` on the writer thread, after pending writes.

        This is the serialization point the HTTP read endpoint and
        :meth:`retain` go through: the callable sees a connection with
        every enqueued write already committed, and it can never race
        the writer because it *is* the writer for its turn.  The
        callable's exception is re-raised here as a
        :class:`WarehouseError` (the original as ``__cause__``);
        a failing task does not kill the writer.
        """
        holder: Dict[str, Any] = {}
        done = threading.Event()
        self._enqueue(("task", (fn, holder, done)))
        if not done.wait(timeout_s):
            raise WarehouseError(
                f"serialized task did not complete within {timeout_s:g}s"
            )
        if "error" in holder:
            error = holder["error"]
            if isinstance(error, WarehouseError):
                raise error
            raise WarehouseError(
                f"serialized task failed: {error!r}"
            ) from error
        return holder.get("result")

    def retain(
        self,
        *,
        days: Optional[float] = None,
        rows: Optional[int] = None,
        vacuum: bool = True,
        timeout_s: float = 300.0,
    ) -> Dict[str, Any]:
        """Compact the warehouse to a retention window and/or row cap.

        ``days`` drops ``results`` and ``bench_history`` rows recorded
        more than that many days ago; ``rows`` additionally caps
        ``results`` to the newest N.  Runs serialized on the writer
        thread (deletes commit first, then ``VACUUM`` reclaims the
        file space outside any transaction).  Returns a summary dict.
        """
        if days is None and rows is None:
            raise WarehouseError(
                "retain needs a days window and/or a row cap"
            )
        if days is not None and days < 0:
            raise WarehouseError("retain days must be >= 0")
        if rows is not None and rows < 0:
            raise WarehouseError("retain rows must be >= 0")
        cutoff = (
            time.time() - float(days) * 86400.0 if days is not None
            else None
        )

        def _task(conn: sqlite3.Connection) -> Dict[str, Any]:
            expired = bench = capped = 0
            if cutoff is not None:
                expired = conn.execute(
                    "DELETE FROM results WHERE recorded_at < ?", (cutoff,)
                ).rowcount
                bench = conn.execute(
                    "DELETE FROM bench_history WHERE recorded_at < ?",
                    (cutoff,),
                ).rowcount
            if rows is not None:
                capped = conn.execute(
                    "DELETE FROM results WHERE id NOT IN ("
                    "SELECT id FROM results "
                    "ORDER BY recorded_at DESC, id DESC LIMIT ?)",
                    (int(rows),),
                ).rowcount
            conn.commit()
            if vacuum:
                conn.execute("VACUUM")
            (remaining,) = conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
            return {
                "path": str(self.path),
                "removed_expired": int(expired),
                "removed_over_cap": int(capped),
                "bench_removed": int(bench),
                "remaining": int(remaining),
                "vacuumed": bool(vacuum),
                "cutoff": cutoff,
            }

        return self.run_serialized(_task, timeout_s=timeout_s)

    def close(self, timeout_s: float = 30.0) -> None:
        """Flush and stop the writer; the warehouse rejects new writes."""
        if self._closed:
            return
        self._closed = True
        writer = self._writer
        if writer is not None and writer.is_alive():
            self._queue.put(("stop", None))
            writer.join(timeout_s)

    def __enter__(self) -> "ResultsWarehouse":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reads ---------------------------------------------------------------

    @staticmethod
    def _filters(
        *,
        scenario: Optional[str] = None,
        status: Optional[str] = None,
        job: Optional[str] = None,
        spec_hash: Optional[str] = None,
        source: Optional[str] = None,
        code_version: Optional[str] = None,
        cached: Optional[bool] = None,
        since: Optional[Any] = None,
        until: Optional[Any] = None,
    ) -> tuple:
        clauses: List[str] = []
        params: List[Any] = []
        if scenario is not None:
            clauses.append("scenario = ?")
            params.append(scenario)
        if status is not None:
            clauses.append("status = ?")
            params.append(status)
        if job is not None:
            clauses.append("job_id = ?")
            params.append(job)
        if spec_hash is not None:
            clauses.append("spec_hash = ?")
            params.append(spec_hash)
        if source is not None:
            clauses.append("source = ?")
            params.append(source)
        if code_version is not None:
            clauses.append("code_version = ?")
            params.append(code_version)
        if cached is not None:
            clauses.append("cached = ?")
            params.append(int(cached))
        if since is not None:
            clauses.append("recorded_at >= ?")
            params.append(parse_when(since))
        if until is not None:
            clauses.append("recorded_at <= ?")
            params.append(parse_when(until))
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        return where, params

    def query(
        self,
        *,
        limit: Optional[int] = None,
        **filters: Any,
    ) -> List[Dict[str, Any]]:
        """Matching result rows, oldest first, params decoded back to dicts."""
        where, params = self._filters(**filters)
        sql = f"SELECT * FROM results{where} ORDER BY recorded_at, id"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        conn = self._read_conn()
        try:
            rows = [dict(row) for row in conn.execute(sql, params)]
        finally:
            conn.close()
        for row in rows:
            try:
                row["params"] = json.loads(row["params"])
            except (TypeError, ValueError):
                row["params"] = {}
            row["cached"] = bool(row["cached"])
            if row["reproduced"] is not None:
                row["reproduced"] = bool(row["reproduced"])
        return rows

    def count(self, **filters: Any) -> int:
        where, params = self._filters(**filters)
        conn = self._read_conn()
        try:
            (n,) = conn.execute(
                f"SELECT COUNT(*) FROM results{where}", params
            ).fetchone()
        finally:
            conn.close()
        return int(n)

    @staticmethod
    def parse_agg(spec: str) -> tuple:
        """``"mean:wall_time"`` -> validated ``(sql_fn, column, label)``."""
        fn, _colon, fieldname = spec.partition(":")
        fn = fn.strip().lower()
        if fn not in _AGG_FUNCTIONS:
            raise WarehouseError(
                f"unknown aggregate {fn!r}; expected one of "
                f"{sorted(_AGG_FUNCTIONS)}"
            )
        fieldname = fieldname.strip()
        if fn == "count":
            label = f"count_{fieldname}" if fieldname else "count"
            return _AGG_FUNCTIONS[fn], "*", label
        fieldname = _FIELD_ALIASES.get(fieldname, fieldname) or "wall_time_s"
        if fieldname not in _NUMERIC_FIELDS:
            raise WarehouseError(
                f"cannot aggregate over {fieldname!r}; numeric fields: "
                f"{sorted(_NUMERIC_FIELDS)}"
            )
        return _AGG_FUNCTIONS[fn], fieldname, f"{fn}_{fieldname}"

    def aggregate(
        self,
        aggs: Sequence[str],
        *,
        group_by: str = "scenario",
        **filters: Any,
    ) -> List[Dict[str, Any]]:
        """Grouped aggregates, e.g. ``aggs=["mean:wall_time_s", "count:"]``.

        ``group_by`` must be a categorical column; each output row is
        ``{group_by: value, "<fn>_<field>": number, ...}``.
        """
        if group_by not in _GROUP_FIELDS:
            raise WarehouseError(
                f"cannot group by {group_by!r}; choose from "
                f"{sorted(_GROUP_FIELDS)}"
            )
        parsed = [self.parse_agg(a) for a in (aggs or ["count:"])]
        select = ", ".join(
            f"{fn}({column}) AS {label}" for fn, column, label in parsed
        )
        where, params = self._filters(**filters)
        sql = (
            f"SELECT {group_by}, {select} FROM results{where} "
            f"GROUP BY {group_by} ORDER BY {group_by}"
        )
        conn = self._read_conn()
        try:
            return [dict(row) for row in conn.execute(sql, params)]
        finally:
            conn.close()

    def bench_trend(
        self, scenario: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Ingested bench-history rows (oldest first) for trend queries."""
        sql = "SELECT * FROM bench_history"
        params: List[Any] = []
        if scenario is not None:
            sql += " WHERE scenario = ?"
            params.append(scenario)
        sql += " ORDER BY recorded_at, id"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        conn = self._read_conn()
        try:
            return [dict(row) for row in conn.execute(sql, params)]
        finally:
            conn.close()

    def stats(self) -> Dict[str, Any]:
        """Row counts and span for ``repro query --stats`` style output."""
        conn = self._read_conn()
        try:
            (results,) = conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()
            (bench,) = conn.execute(
                "SELECT COUNT(*) FROM bench_history"
            ).fetchone()
            span = conn.execute(
                "SELECT MIN(recorded_at), MAX(recorded_at) FROM results"
            ).fetchone()
            (jobs,) = conn.execute(
                "SELECT COUNT(DISTINCT job_id) FROM results "
                "WHERE job_id != ''"
            ).fetchone()
            (versions,) = conn.execute(
                "SELECT COUNT(DISTINCT code_version) FROM results"
            ).fetchone()
        finally:
            conn.close()
        return {
            "path": str(self.path),
            "results": int(results),
            "bench_history": int(bench),
            "jobs": int(jobs),
            "code_versions": int(versions),
            "first_recorded_at": span[0],
            "last_recorded_at": span[1],
        }
