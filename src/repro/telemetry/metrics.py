"""Counters, gauges and histograms behind one snapshot-able registry.

The registry is process-global (:data:`METRICS`) and get-or-create:
``METRICS.counter("service.submits").inc()`` is safe from any thread
and from code that doesn't know whether anyone will ever read the
number.  ``snapshot()`` renders everything as one plain dict — the
payload the service protocol's ``status`` frame and ``repro status``
carry.

Instruments are deliberately cheap: a counter increment is one lock
acquisition around an integer add.  Histograms keep running moments
(count / total / min / max) plus the most recent observation rather
than buckets — enough for lease-latency and wall-time style questions
without unbounded memory.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """A point-in-time level (queue depth, registered workers, ...)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Histogram:
    """Running moments of an observed distribution."""

    __slots__ = ("count", "total", "min", "max", "last", "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.last: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self.last = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "count": self.count,
                "total": round(self.total, 6),
                "min": self.min,
                "max": self.max,
                "mean": (
                    round(self.total / self.count, 6) if self.count else None
                ),
                "last": self.last,
            }


class MetricsRegistry:
    """Named instruments, created on first touch, snapshot as a dict."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls):
        instrument = self._instruments.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.setdefault(name, cls())
        if not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments as ``{"counters": ..., "gauges": ...,
        "histograms": ...}`` of plain JSON-able values."""
        counters: Dict[str, Any] = {}
        gauges: Dict[str, Any] = {}
        histograms: Dict[str, Any] = {}
        for name, instrument in sorted(self._instruments.items()):
            if isinstance(instrument, Counter):
                counters[name] = instrument.snapshot()
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.snapshot()
            else:
                histograms[name] = instrument.snapshot()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def reset(self) -> None:
        """Drop every instrument (tests; a long-lived server never does)."""
        with self._lock:
            self._instruments.clear()


#: the process-global registry every instrumented component shares.
METRICS = MetricsRegistry()
