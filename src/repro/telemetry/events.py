"""Structured events on an in-process bus, plus stderr diagnostics.

An :class:`Event` is one timestamped fact about the platform — a job
started, a lease was requeued, a submit was rejected — carrying the
two correlation ids that stitch a distributed sweep back together:
the *job id* (assigned by the server/coordinator and riding the wire
protocol) and the *spec hash* (content-addressed identity of the unit
of work, stable across coordinator, worker and executor).

The bus is deliberately minimal: subscribers are plain callables, and
:meth:`EventBus.emit` returns immediately when nobody is subscribed —
one attribute load and a truth test — so instrumented code paths cost
nothing in the default (unobserved) configuration.  Subscription is
copy-on-write, so emitting never takes a lock.

:func:`diag` is the human-diagnostics channel: one line to *stderr*,
keeping stdout reserved for machine-readable output (reports, JSON).
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

__all__ = [
    "Event",
    "EventBus",
    "JsonlSink",
    "BUS",
    "emit",
    "diag",
    "attach_jsonl_sink",
    "configure_from_env",
]

#: env var naming a JSONL file to trace every event into (the CLI
#: calls :func:`configure_from_env` at startup).
EVENTS_ENV = "REPRO_EVENTS"


@dataclass(frozen=True)
class Event:
    """One structured fact: who, what, when, and the correlation ids."""

    ts: float
    component: str            # e.g. "engine.executor", "cluster.worker"
    kind: str                 # e.g. "job-finish", "lease-requeue"
    job_id: str = ""
    spec_hash: str = ""
    payload: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "ts": self.ts,
            "component": self.component,
            "kind": self.kind,
        }
        if self.job_id:
            data["job_id"] = self.job_id
        if self.spec_hash:
            data["spec_hash"] = self.spec_hash
        if self.payload:
            data["payload"] = dict(self.payload)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Event":
        return cls(
            ts=float(data.get("ts", 0.0)),
            component=str(data.get("component", "")),
            kind=str(data.get("kind", "")),
            job_id=str(data.get("job_id", "")),
            spec_hash=str(data.get("spec_hash", "")),
            payload=dict(data.get("payload") or {}),
        )


Subscriber = Callable[[Event], None]


class EventBus:
    """Synchronous in-process pub/sub with a free unobserved path."""

    __slots__ = ("_subscribers", "_lock")

    def __init__(self) -> None:
        self._subscribers: tuple = ()
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """True when at least one subscriber would see an emit."""
        return bool(self._subscribers)

    def subscribe(self, fn: Subscriber) -> Subscriber:
        with self._lock:
            self._subscribers = self._subscribers + (fn,)
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        # equality, not identity: bound methods (``seen.append``) are
        # rebuilt on every attribute access but compare equal
        with self._lock:
            self._subscribers = tuple(
                s for s in self._subscribers if s != fn
            )

    def emit(
        self,
        component: str,
        kind: str,
        *,
        job_id: str = "",
        spec_hash: str = "",
        **payload: Any,
    ) -> Optional[Event]:
        """Publish one event; a no-op (returning None) when unobserved."""
        subscribers = self._subscribers
        if not subscribers:
            return None
        event = Event(
            ts=time.time(),
            component=component,
            kind=kind,
            job_id=job_id,
            spec_hash=spec_hash,
            payload=payload,
        )
        for fn in subscribers:
            try:
                fn(event)
            except Exception:
                # a broken sink must never take down the host component
                pass
        return event


#: the process-global bus every instrumented component emits on.
BUS = EventBus()
emit = BUS.emit


class JsonlSink:
    """Append every event to a JSONL file (one object per line).

    Writes are serialized under a lock, so events emitted from the
    server's executor threads, the worker's heartbeat thread and the
    main thread interleave as whole lines.

    Two knobs make week-long campaign traces survivable:

    * ``max_bytes`` — when a write would push the file past this size,
      the file is rotated first: ``path`` → ``path.1`` → … →
      ``path.<backups>``, oldest dropped.  Rotation happens on whole
      event boundaries, so every generation is valid JSONL.
    * ``flush_every`` — flush after every N events (default 1, the
      historical per-event behavior).  ``0`` leaves flushing to the OS
      buffer and :meth:`close`, trading durability for throughput.
    """

    def __init__(self, path: str, *, max_bytes: Optional[int] = None,
                 backups: int = 3, flush_every: int = 1):
        self.path = str(path)
        self.max_bytes = int(max_bytes) if max_bytes else 0
        self.backups = max(1, int(backups))
        self.flush_every = max(0, int(flush_every))
        self.rotations = 0
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        try:
            self._size = os.path.getsize(self.path)
        except OSError:
            self._size = 0
        self._unflushed = 0
        self._lock = threading.Lock()

    def _rotate_locked(self) -> None:
        self._file.close()
        for i in range(self.backups - 1, 0, -1):
            src = f"{self.path}.{i}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{i + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._file = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self.rotations += 1

    def __call__(self, event: Event) -> None:
        line = json.dumps(event.to_dict(), default=str) + "\n"
        nbytes = len(line.encode("utf-8"))
        with self._lock:
            if self._file.closed:
                return
            # only rotate a non-empty file: a single event larger than
            # max_bytes must not rotate forever without ever writing
            if self.max_bytes and self._size and \
                    self._size + nbytes > self.max_bytes:
                try:
                    self._rotate_locked()
                except OSError:
                    pass
            self._file.write(line)
            self._size += nbytes
            self._unflushed += 1
            if self.flush_every and self._unflushed >= self.flush_every:
                self._file.flush()
                self._unflushed = 0

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()


def attach_jsonl_sink(path: str, bus: EventBus = BUS,
                      **kwargs: Any) -> JsonlSink:
    """Subscribe a :class:`JsonlSink` on *bus*; returns it for close()."""
    sink = JsonlSink(path, **kwargs)
    bus.subscribe(sink)
    return sink


#: the sink attached by :func:`configure_from_env`, keyed by path so
#: repeated CLI entry (tests calling ``main`` in-process) is idempotent.
_env_sink: Optional[JsonlSink] = None


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, "") or default)
    except ValueError:
        return default


def configure_from_env(bus: EventBus = BUS) -> Optional[JsonlSink]:
    """Attach a JSONL sink when ``REPRO_EVENTS`` names a path.

    Sink policy rides along in ``REPRO_EVENTS_MAX_BYTES`` (rotation
    threshold, 0 = never rotate), ``REPRO_EVENTS_BACKUPS`` (rotated
    generations kept) and ``REPRO_EVENTS_FLUSH_EVERY`` (events per
    flush, 0 = buffered).
    """
    global _env_sink
    path = os.environ.get(EVENTS_ENV)
    if not path:
        return None
    if _env_sink is not None and _env_sink.path == str(path):
        return _env_sink
    _env_sink = attach_jsonl_sink(
        path, bus,
        max_bytes=_env_int("REPRO_EVENTS_MAX_BYTES", 0),
        backups=_env_int("REPRO_EVENTS_BACKUPS", 3),
        flush_every=_env_int("REPRO_EVENTS_FLUSH_EVERY", 1),
    )
    return _env_sink


def diag(component: str, text: str) -> None:
    """One diagnostic line to stderr (stdout stays machine-readable)."""
    print(f"[{component}] {text}", file=sys.stderr, flush=True)
