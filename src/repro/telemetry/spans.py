"""Cross-tier trace spans, emitted as ordinary bus events.

A *span* is one timed hop of a spec's journey through the platform:
the front accepts a job (``job``), the federation grants a chunk to a
pool (``assign``), the pool leases one spec to a worker (``lease``),
the worker executes it (``execute``).  Every span event carries the
same ``trace_id`` — minted once at submit time and threaded through
the wire protocol (``submit``/``lease`` frames grow an optional
``trace`` field) — plus its own span id and its parent's, so one
query over the event stream (``kind == "span"``, one trace id)
reconstructs the cross-tier critical path of any spec.

Deliberately not a tracing framework: no context propagation magic,
no sampling, no clocks beyond a duration the *emitter* measured.
Trace ids ride the frames whether or not anyone is listening (two
short strings per hop); span *emission* is gated on ``BUS.enabled``
like every other event, so the unobserved cost stays one attribute
load.
"""

from __future__ import annotations

import uuid
from typing import Any, Dict, Mapping, Optional

from repro.telemetry.events import BUS, Event

__all__ = [
    "SPAN_KIND",
    "new_trace_id",
    "new_span_id",
    "emit_span",
    "trace_context",
    "span_tree",
]

#: the event ``kind`` every span is emitted under.
SPAN_KIND = "span"


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (one per submitted job)."""
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    """A fresh 8-hex-char span id (one per hop)."""
    return uuid.uuid4().hex[:8]


def trace_context(trace_id: str, span_id: str = "") -> Dict[str, str]:
    """The wire form of a trace: ``{"id": ..., "span": parent-span}``.

    Attached to ``submit`` and ``lease`` frames so the receiving tier
    can parent its own spans on the sender's.
    """
    context = {"id": str(trace_id)}
    if span_id:
        context["span"] = str(span_id)
    return context


def emit_span(
    component: str,
    name: str,
    *,
    trace_id: str,
    span_id: str,
    parent_id: str = "",
    job_id: str = "",
    spec_hash: str = "",
    duration_s: Optional[float] = None,
    bus=BUS,
    **payload: Any,
) -> Optional[Event]:
    """Publish one completed span as a ``kind="span"`` event.

    Spans are emitted once, at completion, with their measured
    duration — there is no open/close pair to correlate.  A no-op
    (like every emit) while the bus is unobserved.
    """
    if not bus.enabled or not trace_id:
        return None
    fields: Dict[str, Any] = {
        "name": name,
        "trace": str(trace_id),
        "span": str(span_id),
    }
    if parent_id:
        fields["parent"] = str(parent_id)
    if duration_s is not None:
        fields["duration_s"] = round(float(duration_s), 6)
    fields.update(payload)
    return bus.emit(component, SPAN_KIND, job_id=job_id,
                    spec_hash=spec_hash, **fields)


def span_tree(events) -> Dict[str, Dict[str, Any]]:
    """Index span events (dicts or :class:`Event`) by span id.

    Returns ``{span_id: {"parent": ..., "name": ..., "trace": ...,
    "children": [...], ...payload}}`` — the reconstruction helper the
    tests and ad-hoc analysis use to walk a critical path from any
    ``execute`` span back to its root ``job`` span.
    """
    spans: Dict[str, Dict[str, Any]] = {}
    for event in events:
        data = event.to_dict() if isinstance(event, Event) else dict(event)
        if data.get("kind") != SPAN_KIND:
            continue
        payload = dict(data.get("payload") or {})
        span_id = str(payload.get("span") or "")
        if not span_id:
            continue
        node = {
            "component": data.get("component", ""),
            "job_id": data.get("job_id", ""),
            "spec_hash": data.get("spec_hash", ""),
            "children": spans.get(span_id, {}).get("children", []),
            **payload,
        }
        spans[span_id] = node
    for span_id, node in spans.items():
        parent = node.get("parent")
        if parent and parent in spans:
            spans[parent].setdefault("children", [])
            if span_id not in spans[parent]["children"]:
                spans[parent]["children"].append(span_id)
    return spans
