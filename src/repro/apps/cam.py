"""CAM/TCAM lookup baseline.

The comparison point for the NPSE experiment (E18): a ternary CAM
matches all stored prefixes in parallel in a single access, but every
stored bit participates in every search, so search energy scales with
table size and each ternary cell costs ~2x SRAM area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

#: TCAM cell area relative to an SRAM bit (ternary cell = 2 bits + match).
TCAM_AREA_FACTOR = 2.0

#: Search energy per stored ternary bit per lookup (pJ) — every cell
#: discharges its matchline segment on every search.
TCAM_SEARCH_PJ_PER_KBIT = 1.4

#: Bits per IPv4 TCAM entry (32 value + 32 mask stored as ternary).
TCAM_BITS_PER_ENTRY = 32


@dataclass(frozen=True)
class TcamModel:
    """Area/energy figures for a TCAM of a given size."""

    entries: int
    bits: int
    area_sram_equivalent_bits: float
    search_energy_pj: float

    @classmethod
    def for_entries(cls, entries: int) -> "TcamModel":
        if entries < 1:
            raise ValueError(f"need >=1 entry, got {entries}")
        bits = entries * TCAM_BITS_PER_ENTRY
        return cls(
            entries=entries,
            bits=bits,
            area_sram_equivalent_bits=bits * TCAM_AREA_FACTOR,
            search_energy_pj=bits / 1024.0 * TCAM_SEARCH_PJ_PER_KBIT,
        )


class CamTable:
    """A functional TCAM: priority-ordered prefix matching in one access.

    Entries are kept sorted by descending prefix length (the hardware
    priority encoder); lookup reports the energy of the full parallel
    search.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[int, int, int]] = []  # (prefix, length, hop)
        self._sorted = True

    def insert(self, prefix: int, length: int, next_hop: int) -> None:
        if not 0 <= length <= 32:
            raise ValueError(f"prefix length must be 0..32, got {length}")
        if not 0 <= prefix < 1 << 32:
            raise ValueError(f"prefix out of range: {prefix:#x}")
        if length < 32 and prefix & ((1 << (32 - length)) - 1):
            raise ValueError(
                f"prefix {prefix:#010x}/{length} has bits below the mask"
            )
        self._entries.append((prefix, length, next_hop))
        self._sorted = False

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, address: int) -> Tuple[Optional[int], float]:
        """Return ``(next_hop, search_energy_pj)`` for one parallel search."""
        if not 0 <= address < 1 << 32:
            raise ValueError(f"address out of range: {address:#x}")
        if not self._sorted:
            self._entries.sort(key=lambda e: -e[1])
            self._sorted = True
        energy = self.model().search_energy_pj if self._entries else 0.0
        for prefix, length, next_hop in self._entries:
            if length == 0:
                return next_hop, energy
            mask = ~((1 << (32 - length)) - 1) & 0xFFFFFFFF
            if (address & mask) == prefix:
                return next_hop, energy
        return None, energy

    def model(self) -> TcamModel:
        return TcamModel.for_entries(max(1, len(self._entries)))
