"""Application workloads.

The paper's driver applications: the IPv4 fast path that Section 7.2
maps onto StepNP, the SRAM-based packet search engine (NPSE, Section 8)
with its CAM baseline, line-rate traffic generation, and the consumer
multimedia and wireless-LAN workloads Sections 6 and 8 motivate.
"""

from repro.apps.lpm import LpmTrie, TrieStats
from repro.apps.cam import CamTable, TcamModel
from repro.apps.ipv4 import (
    Ipv4Header,
    Ipv4Forwarder,
    checksum16,
    parse_header,
    build_header,
)
from repro.apps.trafficgen import (
    PacketTrace,
    random_prefix_table,
    worst_case_trace,
)
from repro.apps.stepnp_ipv4 import Ipv4RunResult, run_ipv4_on_stepnp
from repro.apps.multimedia import video_pipeline_graph, FRAME_RATE_TARGETS
from repro.apps.wireless import WlanBaseband, wlan_power_comparison

__all__ = [
    "CamTable",
    "FRAME_RATE_TARGETS",
    "Ipv4Forwarder",
    "Ipv4Header",
    "Ipv4RunResult",
    "LpmTrie",
    "PacketTrace",
    "TcamModel",
    "TrieStats",
    "WlanBaseband",
    "build_header",
    "checksum16",
    "parse_header",
    "random_prefix_table",
    "run_ipv4_on_stepnp",
    "video_pipeline_graph",
    "wlan_power_comparison",
    "worst_case_trace",
]
