"""IPv4 fast-path processing.

The application of the paper's headline result (Section 7.2): "we have
successfully mapped a DSOC model of a complete IPv4 fast-path
application onto a large-scale multi-processor and H/W multi-threaded
instance of the StepNP platform."

This module provides the real packet processing — RFC-791 header
parse/build, RFC-1071 checksum, TTL handling — plus the
:class:`Ipv4Forwarder` DSOC servant whose timing model drives the E14
simulation (parse/verify compute, trie lookups as split NoC reads to
the forwarding-table SRAM, header rewrite compute).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.apps.lpm import LpmTrie
from repro.dsoc.idl import Interface, Method, Param
from repro.dsoc.objects import DsocObject

IPV4_MIN_HEADER_BYTES = 20


#: Preformatted 10-halfword layout of the minimum IPv4 header — the
#: shape every fast-path checksum touches.
_TEN_HALFWORDS = struct.Struct(">10H")


def checksum16(data: bytes) -> int:
    """RFC 1071 one's-complement checksum over *data*.

    The 20-byte minimum-header case (one per packet on the forwarding
    fast path) sums the ten halfwords with a single struct unpack; the
    general case walks byte pairs.  Both fold identically.
    """
    n = len(data)
    if n == 20:
        total = sum(_TEN_HALFWORDS.unpack(data))
    else:
        if n % 2:
            data = data + b"\x00"
            n += 1
        total = 0
        for i in range(0, n, 2):
            total += (data[i] << 8) | data[i + 1]
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def dst_address(header: bytes) -> int:
    """The destination address field, without a full header parse."""
    return struct.unpack_from(">I", header, 16)[0]


@dataclass
class Ipv4Header:
    """Parsed IPv4 header fields (no options support needed for 40B
    worst-case fast-path packets)."""

    version: int
    ihl: int
    dscp: int
    total_length: int
    identification: int
    flags: int
    fragment_offset: int
    ttl: int
    protocol: int
    header_checksum: int
    src: int
    dst: int

    def is_valid(self) -> bool:
        """Version/IHL/TTL sanity for fast-path forwarding."""
        return (
            self.version == 4
            and self.ihl >= 5
            and self.total_length >= IPV4_MIN_HEADER_BYTES
            and self.ttl > 0
        )


def parse_header(data: bytes) -> Ipv4Header:
    """Parse the first 20 bytes of *data* as an IPv4 header."""
    if len(data) < IPV4_MIN_HEADER_BYTES:
        raise ValueError(
            f"need >= {IPV4_MIN_HEADER_BYTES} bytes, got {len(data)}"
        )
    (
        ver_ihl,
        dscp,
        total_length,
        identification,
        flags_frag,
        ttl,
        protocol,
        checksum,
        src,
        dst,
    ) = struct.unpack(">BBHHHBBHII", data[:20])
    return Ipv4Header(
        version=ver_ihl >> 4,
        ihl=ver_ihl & 0x0F,
        dscp=dscp,
        total_length=total_length,
        identification=identification,
        flags=flags_frag >> 13,
        fragment_offset=flags_frag & 0x1FFF,
        ttl=ttl,
        protocol=protocol,
        header_checksum=checksum,
        src=src,
        dst=dst,
    )


def build_header(
    src: int,
    dst: int,
    ttl: int = 64,
    protocol: int = 17,
    total_length: int = 40,
    identification: int = 0,
    dscp: int = 0,
) -> bytes:
    """Build a valid 20-byte IPv4 header with a correct checksum."""
    header = bytearray(
        struct.pack(
            ">BBHHHBBHII",
            (4 << 4) | 5,
            dscp,
            total_length,
            identification,
            0,
            ttl,
            protocol,
            0,
            src,
            dst,
        )
    )
    # Patch the checksum in place rather than packing a second time.
    struct.pack_into(">H", header, 10, checksum16(bytes(header)))
    return bytes(header)


def verify_checksum(header: bytes) -> bool:
    """True when the embedded checksum is consistent (RFC 1071 sums to 0)."""
    return checksum16(header[:IPV4_MIN_HEADER_BYTES]) == 0


def decrement_ttl(header: bytes) -> bytes:
    """Return the header with TTL-1 and the checksum incrementally fixed."""
    parsed = parse_header(header)
    if parsed.ttl == 0:
        raise ValueError("TTL already zero")
    return build_header(
        src=parsed.src,
        dst=parsed.dst,
        ttl=parsed.ttl - 1,
        protocol=parsed.protocol,
        total_length=parsed.total_length,
        identification=parsed.identification,
        dscp=parsed.dscp,
    )


def fast_path(
    header: bytes, table: LpmTrie
) -> Tuple[Optional[int], Optional[bytes]]:
    """The functional fast path: validate, look up, rewrite.

    Returns ``(next_hop, rewritten_header)``; ``(None, None)`` for
    drops (bad checksum, bad fields, TTL expiry, no route).
    """
    if not verify_checksum(header):
        return None, None
    parsed = parse_header(header)
    if not parsed.is_valid() or parsed.ttl <= 1:
        return None, None
    next_hop, _accesses = table.lookup(parsed.dst)
    if next_hop is None:
        return None, None
    return next_hop, decrement_ttl(header)


#: Cycle costs of the fast-path phases on a 500 MHz configurable PE.
#: Sized so that 16 PEs at a 10 Gbit/s 40-byte-packet line rate (one
#: packet per 16 cycles, 256 cycles of aggregate budget per packet) run
#: at the paper's "near 100%" utilization: 240 core cycles per packet.
PARSE_VERIFY_CYCLES = 110.0
REWRITE_CYCLES = 80.0
CLASSIFY_CYCLES = 50.0


class Ipv4Forwarder(DsocObject):
    """DSOC servant for the IPv4 fast path.

    ``process(dst, header)`` performs: parse+verify compute, one trie
    SRAM read per touched level (split transactions to the forwarding
    table's NoC terminal — this is where the >100-cycle NoC latencies
    bite single-threaded cores), then classify+rewrite compute.
    """

    interface = Interface(
        "Ipv4Forwarder",
        (
            Method(
                "process",
                (Param("dst", "u32"), Param("header", "bytes")),
            ),
        ),
    )

    def __init__(
        self,
        table: LpmTrie,
        table_terminal: int,
        parse_cycles: float = PARSE_VERIFY_CYCLES,
        rewrite_cycles: float = REWRITE_CYCLES,
        classify_cycles: float = CLASSIFY_CYCLES,
    ) -> None:
        super().__init__()
        self.table = table
        self.table_terminal = table_terminal
        self.parse_cycles = parse_cycles
        self.rewrite_cycles = rewrite_cycles
        self.classify_cycles = classify_cycles
        self.forwarded = 0
        self.dropped = 0

    def serve_process(self, ctx, svc, dst, header):
        # Phase 1: parse + checksum verification (pure compute).
        yield from ctx.compute(self.parse_cycles)
        if not verify_checksum(header):
            self.dropped += 1
            return -1
        parsed = parse_header(header)
        if not parsed.is_valid() or parsed.ttl <= 1:
            self.dropped += 1
            return -1
        # Phase 2: trie walk — one split SRAM read per level actually
        # touched.  The functional result comes from the local table
        # model; the reads model the NoC/SRAM traffic of the NPSE walk.
        next_hop, accesses = self.table.lookup(parsed.dst)
        for level in range(accesses):
            yield from svc.read(
                self.table_terminal, (parsed.dst >> (24 - 8 * min(level, 3))), 2
            )
        if next_hop is None:
            self.dropped += 1
            return -1
        # Phase 3: classification + TTL/checksum rewrite (compute).
        yield from ctx.compute(self.classify_cycles + self.rewrite_cycles)
        self.forwarded += 1
        return next_hop
