"""Longest-prefix-match trie: the NPSE packet search engine model.

Section 8 of the paper describes "a high-performance network packet
search engine optimized for IPv4/IPv6 forwarding.  In comparison with
CAM-based look-up methods, it relies on an SRAM-based approach that is
more memory and power-efficient" [Soni et al., DATE 2003].  This module
implements the SRAM side: a multi-bit-stride trie whose per-lookup cost
is a handful of SRAM reads, with area/energy accounting that experiment
E18 compares against the CAM baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Energy of one SRAM read of a trie node (pJ), 130 nm class.
SRAM_READ_PJ = 20.0

#: SRAM bits per trie-node entry (next-hop/child pointer + flags).
BITS_PER_ENTRY = 24


class _Node:
    """One trie node: a 2^stride fan-out of children and stored next hops.

    ``next_hops[i]`` holds ``(next_hop, prefix_length)`` so controlled
    prefix expansion can give longer prefixes priority regardless of
    insertion order.  Both maps are index->value dicts rather than
    dense ``[None] * fanout`` lists: real tables leave most slots
    empty, and skipping the dense allocation makes table builds ~2x
    faster (the SRAM accounting in :meth:`LpmTrie.stats` still charges
    the full ``fanout`` entries per node, as the hardware would).
    """

    __slots__ = ("children", "next_hops")

    def __init__(self) -> None:
        self.children: Dict[int, "_Node"] = {}
        self.next_hops: Dict[int, Tuple[int, int]] = {}


@dataclass(frozen=True)
class TrieStats:
    """Size/cost figures for a built trie."""

    prefixes: int
    nodes: int
    entries: int
    sram_bits: int
    sram_kbytes: float
    worst_case_accesses: int

    def lookup_energy_pj(self, accesses: int) -> float:
        return accesses * SRAM_READ_PJ


class LpmTrie:
    """Multi-bit-stride longest-prefix-match trie over IPv4 addresses.

    Parameters
    ----------
    stride:
        Bits consumed per level; stride 8 gives at most 4 SRAM accesses
        per lookup for IPv4.  Controlled-prefix-expansion is applied on
        insert: a prefix whose length is not a stride multiple is
        expanded into the covering entries at the next level boundary.
    """

    def __init__(self, stride: int = 8) -> None:
        if not 1 <= stride <= 16:
            raise ValueError(f"stride must be in 1..16, got {stride}")
        if 32 % stride:
            raise ValueError(f"stride {stride} must divide 32")
        self.stride = stride
        self.levels = 32 // stride
        self._fanout = 1 << stride
        self._root = _Node()
        self._node_count = 1
        self._prefixes = 0
        #: (depth of deepest stored entry) for worst-case accounting
        self._max_depth = 1

    def insert(self, prefix: int, length: int, next_hop: int) -> None:
        """Insert ``prefix/length`` with *next_hop*.

        Longer (more specific) prefixes stored deeper override shorter
        ones on lookup, per LPM semantics.
        """
        self._check_prefix(prefix, length)
        if next_hop < 0:
            raise ValueError(f"negative next hop {next_hop}")
        self._prefixes += 1
        # Expanded entries share one tuple; the keep-the-longest-prefix
        # comparison runs inline because table builds hit it hundreds of
        # thousands of times (the span loops below are the hot path).
        entry = (next_hop, length)
        if length == 0:
            # Default route: expand across the root level.
            hops = self._root.next_hops
            for index in range(self._fanout):
                existing = hops.get(index)
                if existing is None or length >= existing[1]:
                    hops[index] = entry
            return
        # Walk full-stride levels.
        node = self._root
        depth = 1
        remaining = length
        shift = 32
        while remaining > self.stride:
            shift -= self.stride
            index = (prefix >> shift) & (self._fanout - 1)
            child = node.children.get(index)
            if child is None:
                child = _Node()
                node.children[index] = child
                self._node_count += 1
            node = child
            depth += 1
            remaining -= self.stride
        if depth > self._max_depth:
            self._max_depth = depth
        # Controlled prefix expansion within the final level.
        shift -= self.stride
        base = (prefix >> shift) & (self._fanout - 1)
        span = 1 << (self.stride - remaining)
        start = base & ~(span - 1)
        hops = node.next_hops
        for index in range(start, start + span):
            existing = hops.get(index)
            if existing is None or length >= existing[1]:
                hops[index] = entry

    def insert_many(
        self, entries: List[Tuple[int, int, int]]
    ) -> None:
        """Bulk-load ``(prefix, length, next_hop)`` entries.

        Equivalent to calling :meth:`insert` per entry (the property
        tests assert identical tries) but substantially faster for
        table builds into an **empty** trie: entries are stable-sorted
        by prefix length, which makes the keep-the-longest comparison
        always true — every expanded slot is an unconditional
        overwrite, and whole expansion spans are written with one
        C-level dict update.  On a trie that already holds prefixes
        the sort cannot order the batch against the existing entries,
        so the bulk load falls back to checked per-entry inserts.
        """
        if self._prefixes:
            for prefix, length, next_hop in entries:
                self.insert(prefix, length, next_hop)
            return
        fanout_mask = self._fanout - 1
        stride = self.stride
        for prefix, length, next_hop in sorted(
            entries, key=lambda e: e[1]
        ):
            self._check_prefix(prefix, length)
            if next_hop < 0:
                raise ValueError(f"negative next hop {next_hop}")
            self._prefixes += 1
            entry = (next_hop, length)
            if length == 0:
                self._root.next_hops.update(
                    dict.fromkeys(range(self._fanout), entry)
                )
                continue
            node = self._root
            depth = 1
            remaining = length
            shift = 32
            while remaining > stride:
                shift -= stride
                index = (prefix >> shift) & fanout_mask
                child = node.children.get(index)
                if child is None:
                    child = _Node()
                    node.children[index] = child
                    self._node_count += 1
                node = child
                depth += 1
                remaining -= stride
            if depth > self._max_depth:
                self._max_depth = depth
            shift -= stride
            base = (prefix >> shift) & fanout_mask
            span = 1 << (stride - remaining)
            if span == 1:
                node.next_hops[base] = entry
            else:
                start = base & ~(span - 1)
                node.next_hops.update(
                    dict.fromkeys(range(start, start + span), entry)
                )

    def lookup(self, address: int) -> Tuple[Optional[int], int]:
        """Return ``(next_hop, sram_accesses)`` for *address*.

        ``next_hop`` is None when no prefix covers the address.
        """
        if not 0 <= address < 1 << 32:
            raise ValueError(f"address out of range: {address:#x}")
        node = self._root
        shift = 32
        best: Optional[int] = None
        accesses = 0
        while node is not None:
            shift -= self.stride
            index = (address >> shift) & (self._fanout - 1)
            accesses += 1
            entry = node.next_hops.get(index)
            if entry is not None:
                best = entry[0]
            node = node.children.get(index) if shift > 0 else None
        return best, accesses

    def lookup_many(
        self, addresses: List[int]
    ) -> List[Tuple[Optional[int], int]]:
        """Batched :meth:`lookup` over an address array.

        Returns one ``(next_hop, sram_accesses)`` pair per address.
        The walk is identical to :meth:`lookup`; batching hoists the
        per-call attribute lookups, which matters when experiments
        probe hundreds of addresses per configuration.
        """
        stride = self.stride
        mask = self._fanout - 1
        root = self._root
        results: List[Tuple[Optional[int], int]] = []
        append = results.append
        for address in addresses:
            if not 0 <= address < 1 << 32:
                raise ValueError(f"address out of range: {address:#x}")
            node = root
            shift = 32
            best: Optional[int] = None
            accesses = 0
            while node is not None:
                shift -= stride
                index = (address >> shift) & mask
                accesses += 1
                entry = node.next_hops.get(index)
                if entry is not None:
                    best = entry[0]
                node = node.children.get(index) if shift > 0 else None
            append((best, accesses))
        return results

    def stats(self) -> TrieStats:
        """Memory and worst-case-access figures."""
        entries = self._node_count * self._fanout
        bits = entries * BITS_PER_ENTRY
        return TrieStats(
            prefixes=self._prefixes,
            nodes=self._node_count,
            entries=entries,
            sram_bits=bits,
            sram_kbytes=bits / 8.0 / 1024.0,
            worst_case_accesses=self.levels,
        )

    def _check_prefix(self, prefix: int, length: int) -> None:
        if not 0 <= length <= 32:
            raise ValueError(f"prefix length must be 0..32, got {length}")
        if not 0 <= prefix < 1 << 32:
            raise ValueError(f"prefix out of range: {prefix:#x}")
        if length < 32 and prefix & ((1 << (32 - length)) - 1):
            raise ValueError(
                f"prefix {prefix:#010x}/{length} has bits below the mask"
            )


def linear_scan_lookup(
    table: List[Tuple[int, int, int]], address: int
) -> Optional[int]:
    """Reference LPM by linear scan over (prefix, length, next_hop).

    Used by the property tests as the semantics oracle for the trie.
    """
    best_length = -1
    best_hop: Optional[int] = None
    for prefix, length, next_hop in table:
        if length == 0:
            matches = True
        else:
            mask = ~((1 << (32 - length)) - 1) & 0xFFFFFFFF
            matches = (address & mask) == prefix
        if matches and length > best_length:
            best_length = length
            best_hop = next_hop
    return best_hop
