"""The StepNP IPv4 experiment harness (the paper's headline result).

Section 7.2: "We achieved near 100% utilization of the embedded
processors and threads, even in presence of NoC interconnect latencies
of over 100 cycles, while processing worst-case traffic at a 10 Gbit
line rate."

:func:`run_ipv4_on_stepnp` reproduces the setup: a StepNP platform
(N multithreaded PEs + NoC + on-chip SRAM forwarding table + 10 Gbit/s
line interface), the DSOC-deployed :class:`~repro.apps.ipv4.Ipv4Forwarder`
replicated across all PEs, and a worst-case 40-byte-packet trace pushed
at line rate.  Extra configured NoC latency models the "latencies of
over 100 cycles" regime; the thread-count sweep is experiment E14's
x-axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.apps.ipv4 import Ipv4Forwarder
from repro.apps.trafficgen import (
    PacketTrace,
    build_trie,
    random_prefix_table,
    worst_case_trace,
)
from repro.dsoc.broker import ReplicaPolicy
from repro.dsoc.runtime import DsocRuntime
from repro.noc.ocp import OcpSlave
from repro.noc.topology import TopologyKind
from repro.platform.fppa import build_platform
from repro.platform.stepnp import stepnp_spec
from repro.sim.core import Timeout


@dataclass(frozen=True)
class Ipv4RunResult:
    """Measured outcome of one StepNP IPv4 run."""

    num_pes: int
    threads_per_pe: int
    extra_table_latency: float
    offered_gbps: float
    sustained_gbps: float
    packets_offered: int
    packets_processed: int
    packets_forwarded: int
    packets_dropped: int
    avg_pe_utilization: float
    min_pe_utilization: float
    duration_cycles: float

    @property
    def line_rate_sustained(self) -> bool:
        """True when >=90% of offered packets completed inside the
        line-rate window (the remainder is the in-flight pipeline tail)."""
        return self.packets_processed >= 0.90 * self.packets_offered

    def as_row(self) -> dict:
        return {
            "pes": self.num_pes,
            "threads": self.threads_per_pe,
            "table_latency": self.extra_table_latency,
            "offered_gbps": round(self.offered_gbps, 2),
            "sustained_gbps": round(self.sustained_gbps, 2),
            "utilization": round(self.avg_pe_utilization, 3),
            "line_rate": self.line_rate_sustained,
        }


def run_ipv4_on_stepnp(
    num_pes: int = 16,
    threads_per_pe: int = 8,
    packets: int = 2000,
    line_rate_gbps: float = 10.0,
    packet_bytes: int = 40,
    clock_ghz: float = 0.5,
    table_prefixes: int = 2000,
    extra_table_latency: float = 0.0,
    topology: TopologyKind | str = TopologyKind.FAT_TREE,
    policy: ReplicaPolicy = ReplicaPolicy.ROUND_ROBIN,
    trace: Optional[PacketTrace] = None,
    seed: int = 9,
) -> Ipv4RunResult:
    """Run worst-case IPv4 traffic through a StepNP instance.

    *extra_table_latency* adds cycles to every forwarding-table SRAM
    access, standing in for deeper NoC hierarchies; the total
    round-trip seen by a thread is NoC request + SRAM + NoC response.
    """
    spec = stepnp_spec(
        num_pes=num_pes,
        threads=threads_per_pe,
        topology=topology,
        clock_ghz=clock_ghz,
    )
    platform = build_platform(spec)
    table = random_prefix_table(table_prefixes, seed=seed)
    trie = build_trie(table)
    if trace is None:
        trace = worst_case_trace(
            packets,
            table,
            packet_bytes=packet_bytes,
            line_rate_gbps=line_rate_gbps,
            clock_ghz=clock_ghz,
            seed=seed,
        )
    # Re-bind the eSRAM terminal with the configured extra latency: it
    # holds the forwarding table the servants walk.
    esram = next(m for m in platform.memories if m.technology == "esram")
    table_terminal = esram.terminal
    if extra_table_latency > 0:
        OcpSlave(
            platform.network,
            table_terminal,
            access_latency=esram.slave.access_latency + extra_table_latency,
            name="fwd-table",
        )
    runtime = DsocRuntime(platform, policy=policy)
    servants: List[Ipv4Forwarder] = []

    def factory() -> Ipv4Forwarder:
        servant = Ipv4Forwarder(trie, table_terminal)
        servants.append(servant)
        return servant

    runtime.deploy_replicated(
        "ipv4", factory, server_threads=threads_per_pe
    )
    # The line interface's terminal doubles as the ingress dispatcher.
    ingress_terminal = platform.line_interfaces[0].terminal
    proxy = runtime.proxy(ingress_terminal, "ipv4")
    completions: List[Tuple[int, float]] = []  # (result, completion time)
    sim = platform.sim

    def ingress():
        from repro.apps.ipv4 import dst_address

        gap = trace.interarrival_cycles
        call = proxy.call
        record = completions.append
        for header in trace.headers:
            event = call("process", dst_address(header), header)
            event.callbacks.append(
                lambda ev: record((ev.value, sim.now))
            )
            yield Timeout(gap)

    sim.spawn(ingress(), name="ingress")
    # The line-rate window: all measurements are taken against it; a
    # short drain afterwards only recovers stragglers for accounting.
    window = trace.interarrival_cycles * trace.count
    platform.run(until=window)
    avg_util = platform.average_pe_utilization()
    min_util = platform.min_pe_utilization()
    in_window = len(completions)
    drain_limit = window + 50_000.0
    # Drain in event batches (not 1-cycle run() slices): stop as soon
    # as every packet completed or the drain horizon is reached.
    while len(completions) < trace.count and sim.peek() <= drain_limit:
        if sim.run_steps(256, until=drain_limit) == 0:
            break
    forwarded = sum(s.forwarded for s in servants)
    dropped = sum(s.dropped for s in servants)
    # Sustained rate = packets that completed inside the window.
    sustained_gbps = in_window * packet_bytes * 8.0 * clock_ghz / window
    return Ipv4RunResult(
        num_pes=num_pes,
        threads_per_pe=threads_per_pe,
        extra_table_latency=extra_table_latency,
        offered_gbps=line_rate_gbps,
        sustained_gbps=sustained_gbps,
        packets_offered=trace.count,
        packets_processed=in_window,
        packets_forwarded=forwarded,
        packets_dropped=dropped,
        avg_pe_utilization=avg_util,
        min_pe_utilization=min_util,
        duration_cycles=window,
    )


def thread_sweep(
    thread_counts: Tuple[int, ...] = (1, 2, 4, 8),
    extra_table_latency: float = 100.0,
    num_pes: int = 16,
    packets: int = 1000,
    **kwargs,
) -> List[Ipv4RunResult]:
    """The E14 sweep: utilization/throughput vs hardware thread count."""
    return [
        run_ipv4_on_stepnp(
            num_pes=num_pes,
            threads_per_pe=threads,
            packets=packets,
            extra_table_latency=extra_table_latency,
            **kwargs,
        )
        for threads in thread_counts
    ]
