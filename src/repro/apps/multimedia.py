"""Consumer multimedia workload.

Section 8's outlook extends the MP-SoC programming models "for consumer
multimedia applications like image processing and digital video"; the
introduction names set-top box / DVD / audio as the products where
software licenses exceed silicon cost.  This module provides a video
decoder pipeline as a task graph (for the mapping tools) plus frame-
rate feasibility checks.
"""

from __future__ import annotations

from typing import Dict

from repro.mapping.evaluate import PlatformModel, evaluate_mapping
from repro.noc.routing import cached_routing
from repro.mapping.mapper import communication_aware_map
from repro.mapping.taskgraph import Task, TaskGraph

#: Frames-per-second targets per product class.
FRAME_RATE_TARGETS: Dict[str, float] = {
    "dvd_sd": 30.0,
    "settop_sd": 30.0,
    "digital_video_hd": 60.0,
    "camera_preview": 15.0,
}

#: Per-macroblock reference cycle weights for the decoder stages
#: (GP-RISC reference; DSP/hardwired affinities below).
_STAGE_CYCLES = {
    "bitstream_parse": 300.0,
    "vld": 900.0,
    "inverse_quant": 400.0,
    "idct": 1400.0,
    "motion_comp": 1200.0,
    "deblock": 800.0,
    "color_convert": 700.0,
    "display_dma": 150.0,
}

#: Stage affinities: signal-processing stages run much faster on DSPs.
_STAGE_AFFINITY = {
    "vld": (("asip", 6.0),),
    "inverse_quant": (("dsp", 4.0),),
    "idct": (("dsp", 5.0), ("asip", 8.0)),
    "motion_comp": (("dsp", 4.0),),
    "deblock": (("dsp", 3.5),),
    "color_convert": (("dsp", 4.0),),
}


def video_pipeline_graph(
    macroblocks_per_frame: int = 1350,
    parallel_slices: int = 4,
) -> TaskGraph:
    """A video decode pipeline with slice-level data parallelism.

    The front end (parse, VLD) is serial; IDCT/MC/deblock fan out over
    *parallel_slices*; colour conversion and display close the pipe.
    Compute weights are per *frame* (macroblock weight x count).
    """
    if macroblocks_per_frame < 1:
        raise ValueError(
            f"need >=1 macroblock, got {macroblocks_per_frame}"
        )
    if parallel_slices < 1:
        raise ValueError(f"need >=1 slice, got {parallel_slices}")
    graph = TaskGraph(name=f"video-{parallel_slices}slice")
    mb = macroblocks_per_frame

    def stage_task(name: str, share: float = 1.0) -> Task:
        return Task(
            name,
            _STAGE_CYCLES[name.split(".")[0]] * mb * share,
            _STAGE_AFFINITY.get(name.split(".")[0], ()),
        )

    graph.add_task(stage_task("bitstream_parse"))
    graph.add_task(stage_task("vld"))
    graph.add_edge("bitstream_parse", "vld", 64_000.0)
    per_slice = 1.0 / parallel_slices
    for s in range(parallel_slices):
        for stage in ("inverse_quant", "idct", "motion_comp", "deblock"):
            graph.add_task(stage_task(f"{stage}.{s}", per_slice))
        graph.add_edge("vld", f"inverse_quant.{s}", 32_000.0 * per_slice)
        graph.add_edge(f"inverse_quant.{s}", f"idct.{s}", 48_000.0 * per_slice)
        graph.add_edge(f"idct.{s}", f"motion_comp.{s}", 96_000.0 * per_slice)
        graph.add_edge(f"motion_comp.{s}", f"deblock.{s}", 96_000.0 * per_slice)
    graph.add_task(stage_task("color_convert"))
    graph.add_task(stage_task("display_dma"))
    for s in range(parallel_slices):
        graph.add_edge(f"deblock.{s}", "color_convert", 96_000.0 * per_slice)
    graph.add_edge("color_convert", "display_dma", 128_000.0)
    return graph


def frame_rate_on_platform(
    platform: PlatformModel,
    clock_ghz: float = 0.3,
    macroblocks_per_frame: int = 1350,
    parallel_slices: int = 4,
) -> float:
    """Achievable frames per second with communication-aware mapping."""
    graph = video_pipeline_graph(macroblocks_per_frame, parallel_slices)
    mapping = communication_aware_map(graph, platform)
    cost = evaluate_mapping(
        graph, platform, mapping, cached_routing(platform.topology)
    )
    seconds_per_frame = cost.makespan_cycles / (clock_ghz * 1e9)
    return 1.0 / seconds_per_frame


def meets_target(
    platform: PlatformModel,
    product: str,
    clock_ghz: float = 0.3,
) -> bool:
    """Does the platform sustain the product's frame rate?"""
    if product not in FRAME_RATE_TARGETS:
        raise KeyError(
            f"unknown product {product!r}; known: "
            f"{', '.join(sorted(FRAME_RATE_TARGETS))}"
        )
    return frame_rate_on_platform(platform, clock_ghz) >= FRAME_RATE_TARGETS[product]
