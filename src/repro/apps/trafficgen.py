"""Line-rate packet traffic generation.

Builds the forwarding tables and packet traces for the IPv4
experiments: random-but-realistic prefix tables (a mix of /8 through
/24 with a default route) and worst-case minimum-size packet streams —
40-byte packets back to back at 10 Gbit/s, the arrival process the
paper's Section 7.2 result assumes.
"""

from __future__ import annotations

from bisect import bisect
from dataclasses import dataclass, field
from itertools import accumulate
from typing import List, Tuple

from repro.apps.cam import CamTable
from repro.apps.ipv4 import build_header
from repro.apps.lpm import LpmTrie
from repro.sim.rng import RandomStreams

#: Realistic-ish prefix length distribution for an early-2000s core
#: table: heavy /16-/24 with some coarse aggregates.
PREFIX_LENGTH_WEIGHTS: List[Tuple[int, float]] = [
    (8, 0.02),
    (12, 0.04),
    (16, 0.22),
    (18, 0.07),
    (20, 0.14),
    (22, 0.14),
    (24, 0.37),
]


def random_prefix_table(
    prefixes: int,
    next_hops: int = 16,
    seed: int = 5,
    include_default: bool = True,
) -> List[Tuple[int, int, int]]:
    """Generate (prefix, length, next_hop) entries."""
    if prefixes < 1:
        raise ValueError(f"need >=1 prefix, got {prefixes}")
    if next_hops < 1:
        raise ValueError(f"need >=1 next hop, got {next_hops}")
    rng = RandomStreams(seed).get("prefix_table")
    lengths = [l for l, _w in PREFIX_LENGTH_WEIGHTS]
    # One weighted draw per prefix is the hot path of every table
    # build, so the cumulative weights are prepared once and each draw
    # is a single bisect — the exact operation ``rng.choices`` performs
    # internally (identical float math, so identical tables), without
    # its per-call accumulate/validation/list overhead.
    cum_weights = list(accumulate(w for _l, w in PREFIX_LENGTH_WEIGHTS))
    total = cum_weights[-1] + 0.0
    hi = len(lengths) - 1
    random = rng.random
    getrandbits = rng.getrandbits
    table: List[Tuple[int, int, int]] = []
    seen = set()
    if include_default:
        table.append((0, 0, 0))
    while len(table) < prefixes:
        length = lengths[bisect(cum_weights, random() * total, 0, hi)]
        value = getrandbits(length) << (32 - length)
        if (value, length) in seen:
            continue
        seen.add((value, length))
        table.append((value, length, rng.randrange(next_hops)))
    return table


def build_trie(table: List[Tuple[int, int, int]], stride: int = 8) -> LpmTrie:
    """Load a prefix table into a trie (bulk-load fast path)."""
    trie = LpmTrie(stride=stride)
    trie.insert_many(table)
    return trie


def build_cam(table: List[Tuple[int, int, int]]) -> CamTable:
    """Load a prefix table into the CAM baseline."""
    cam = CamTable()
    for prefix, length, next_hop in table:
        cam.insert(prefix, length, next_hop)
    return cam


@dataclass
class PacketTrace:
    """A generated stream of IPv4 packets.

    ``headers`` are real 20-byte IPv4 headers; ``interarrival_cycles``
    is the line-rate spacing at the SoC clock.
    """

    headers: List[bytes]
    packet_bytes: int
    line_rate_gbps: float
    clock_ghz: float
    interarrival_cycles: float = field(init=False)

    def __post_init__(self) -> None:
        if self.packet_bytes < 20:
            raise ValueError(f"packet must be >=20 bytes, got {self.packet_bytes}")
        if self.line_rate_gbps <= 0 or self.clock_ghz <= 0:
            raise ValueError("rates must be positive")
        bytes_per_cycle = self.line_rate_gbps / 8.0 / self.clock_ghz
        self.interarrival_cycles = self.packet_bytes / bytes_per_cycle

    @property
    def count(self) -> int:
        return len(self.headers)

    def offered_gbps(self) -> float:
        return self.line_rate_gbps


def worst_case_trace(
    count: int,
    table: List[Tuple[int, int, int]],
    packet_bytes: int = 40,
    line_rate_gbps: float = 10.0,
    clock_ghz: float = 0.5,
    seed: int = 9,
    hit_fraction: float = 0.98,
) -> PacketTrace:
    """Minimum-size packets at full line rate.

    Destinations are drawn so *hit_fraction* of them match a random
    table prefix (the rest fall to the default route or miss),
    modelling worst-case traffic that still exercises deep trie walks.
    """
    if count < 1:
        raise ValueError(f"need >=1 packet, got {count}")
    if not 0.0 <= hit_fraction <= 1.0:
        raise ValueError(f"hit fraction must be in [0,1], got {hit_fraction}")
    rng = RandomStreams(seed).get("trace")
    specific = [entry for entry in table if entry[1] > 0]
    headers: List[bytes] = []
    for index in range(count):
        if specific and rng.random() < hit_fraction:
            prefix, length, _hop = rng.choice(specific)
            host_bits = 32 - length
            dst = prefix | (rng.getrandbits(host_bits) if host_bits else 0)
        else:
            dst = rng.getrandbits(32)
        src = rng.getrandbits(32)
        headers.append(
            build_header(
                src=src,
                dst=dst,
                ttl=64,
                total_length=packet_bytes,
                identification=index & 0xFFFF,
            )
        )
    return PacketTrace(
        headers=headers,
        packet_bytes=packet_bytes,
        line_rate_gbps=line_rate_gbps,
        clock_ghz=clock_ghz,
    )
