"""Low-power wireless LAN baseband workload.

Section 8: "The use of coarse and fine grain configurable fabrics
allows the system designer to optimize performance versus power
consumption.  We are exploring these issues in the application of
low-power wireless LAN's."  This module models an 802.11a-class OFDM
baseband (FFT, equalizer, Viterbi) and compares software (DSP), eFPGA
and hardwired implementations on throughput and power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.processors.dsp import DspModel, STANDARD_KERNELS
from repro.processors.efpga import (
    EFPGA_CLOCK_FACTOR,
    EFPGA_POWER_PENALTY,
    EfpgaFabric,
)
from repro.processors.hwip import VITERBI


@dataclass(frozen=True)
class BasebandStage:
    """One stage of the OFDM receive chain."""

    name: str
    kernel: str             # key into STANDARD_KERNELS
    size: int               # kernel problem size per OFDM symbol
    hardwired_gates: float  # ASIC implementation complexity
    hardwired_mw: float     # ASIC power at symbol rate


#: 802.11a 20 MHz OFDM receive chain, per-symbol work.
RECEIVE_CHAIN = (
    BasebandStage("fft64", "fft", 64, 55_000.0, 18.0),
    BasebandStage("channel_eq", "dot_product", 64, 30_000.0, 9.0),
    BasebandStage("viterbi", "viterbi_acs", 64, VITERBI.gates, 35.0),
)

#: 802.11a symbol rate: one OFDM symbol per 4 us.
SYMBOL_RATE_HZ = 250_000.0


@dataclass
class WlanBaseband:
    """One implementation choice per stage: 'dsp', 'efpga', 'hardwired'."""

    assignment: Dict[str, str]
    dsp: DspModel = None

    def __post_init__(self) -> None:
        if self.dsp is None:
            self.dsp = DspModel(name="wlan_dsp", mac_units=4, clock_mhz=200.0)
        valid = {"dsp", "efpga", "hardwired"}
        for stage in RECEIVE_CHAIN:
            choice = self.assignment.get(stage.name)
            if choice not in valid:
                raise ValueError(
                    f"stage {stage.name!r} needs an assignment in {valid}, "
                    f"got {choice!r}"
                )

    def stage_time_us(self, stage: BasebandStage) -> float:
        """Per-symbol processing time of one stage."""
        choice = self.assignment[stage.name]
        kernel = STANDARD_KERNELS[stage.kernel]
        if choice == "dsp":
            return self.dsp.kernel_time_us(kernel, stage.size)
        # Hardwired: one item per cycle pipeline at 200 MHz reference.
        hardwired_us = stage.size / 200.0
        if choice == "hardwired":
            return hardwired_us
        # eFPGA: hardwired dataflow at a third the clock.
        return hardwired_us / EFPGA_CLOCK_FACTOR

    def stage_power_mw(self, stage: BasebandStage) -> float:
        """Average power of one stage at the symbol rate.

        Energy accounting: the eFPGA pays the paper's 10x penalty in
        energy *per operation* (iso-work vs the hardwired block); the
        DSP's power is duty-cycled core power.
        """
        choice = self.assignment[stage.name]
        hardwired_duty = min(
            1.0, (stage.size / 200.0) * 1e-6 * SYMBOL_RATE_HZ
        )
        if choice == "hardwired":
            return stage.hardwired_mw * hardwired_duty
        if choice == "efpga":
            return stage.hardwired_mw * EFPGA_POWER_PENALTY * hardwired_duty
        duty = min(1.0, self.stage_time_us(stage) * 1e-6 * SYMBOL_RATE_HZ)
        return self.dsp.clock_mhz * 1.0 * duty

    def symbol_time_us(self) -> float:
        """Serial per-symbol latency of the chain."""
        return sum(self.stage_time_us(stage) for stage in RECEIVE_CHAIN)

    def total_power_mw(self) -> float:
        return sum(self.stage_power_mw(stage) for stage in RECEIVE_CHAIN)

    def meets_symbol_rate(self) -> bool:
        """Pipeline feasibility: slowest stage under the symbol period."""
        period_us = 1e6 / SYMBOL_RATE_HZ
        return all(
            self.stage_time_us(stage) <= period_us for stage in RECEIVE_CHAIN
        )


def wlan_power_comparison() -> Dict[str, Dict[str, float]]:
    """The Section-8 exploration: all-DSP vs all-eFPGA vs all-hardwired
    vs the mixed assignment; power and feasibility of each."""
    choices = {
        "all_dsp": {s.name: "dsp" for s in RECEIVE_CHAIN},
        "all_efpga": {s.name: "efpga" for s in RECEIVE_CHAIN},
        "all_hardwired": {s.name: "hardwired" for s in RECEIVE_CHAIN},
        "mixed": {
            "fft64": "hardwired",
            "channel_eq": "dsp",
            "viterbi": "hardwired",
        },
    }
    report: Dict[str, Dict[str, float]] = {}
    for name, assignment in choices.items():
        baseband = WlanBaseband(assignment=assignment)
        report[name] = {
            "symbol_time_us": baseband.symbol_time_us(),
            "power_mw": baseband.total_power_mw(),
            "feasible": baseband.meets_symbol_rate(),
        }
    return report
