"""MultiFlex-style application-to-platform mapping tools.

Section 5.3 of the paper calls for tools that "explore this mapping
process, and assist and automate optimization where possible" — closing
the "abstraction grand canyon" between system specification and MP-SoC
platforms.  This package provides:

* :mod:`repro.mapping.taskgraph` — application task graphs with
  per-processor-class affinities and communication volumes;
* :mod:`repro.mapping.mapper` — constructive heuristics (round-robin,
  greedy load balance, communication-aware greedy);
* :mod:`repro.mapping.anneal` — a simulated-annealing refinement pass;
* :mod:`repro.mapping.evaluate` — the analytic cost model (makespan via
  list scheduling + NoC-distance-weighted communication);
* :mod:`repro.mapping.evaluator` — precomputed, incrementally-updatable
  evaluation (the annealer/DSE hot path);
* :mod:`repro.mapping.dse` — design-space exploration sweeps with
  Pareto extraction.
"""

from repro.mapping.taskgraph import (
    Task,
    TaskGraph,
    layered_random_graph,
    pipeline_graph,
    fork_join_graph,
)
from repro.mapping.mapper import (
    Mapping,
    communication_aware_map,
    greedy_load_balance_map,
    random_map,
    round_robin_map,
)
from repro.mapping.anneal import anneal_map
from repro.mapping.evaluate import MappingCost, evaluate_mapping
from repro.mapping.evaluator import IncrementalMapping, MappingEvaluator
from repro.mapping.dse import DesignPoint, explore, pareto_points

__all__ = [
    "DesignPoint",
    "IncrementalMapping",
    "Mapping",
    "MappingCost",
    "MappingEvaluator",
    "Task",
    "TaskGraph",
    "anneal_map",
    "communication_aware_map",
    "evaluate_mapping",
    "explore",
    "fork_join_graph",
    "greedy_load_balance_map",
    "layered_random_graph",
    "pareto_points",
    "pipeline_graph",
    "random_map",
    "round_robin_map",
]
