"""Simulated-annealing mapping refinement.

Starts from a constructive mapping and explores single-task moves and
pairwise swaps under a geometric cooling schedule, accepting uphill
moves with the Metropolis criterion.  This is the "automate
optimization where possible" backstop: slower than the greedy mappers
but consistently at least as good (experiment E15's ablation).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.mapping.evaluate import (
    Mapping,
    MappingCost,
    PlatformModel,
    evaluate_mapping,
)
from repro.mapping.mapper import greedy_load_balance_map
from repro.mapping.taskgraph import TaskGraph
from repro.noc.routing import build_routing
from repro.sim.rng import RandomStreams

CostFn = Callable[[MappingCost], float]


def default_cost(cost: MappingCost) -> float:
    """Makespan with a light communication tiebreaker."""
    return cost.makespan_cycles + 0.01 * cost.total_comm_cycles


def anneal_map(
    graph: TaskGraph,
    platform: PlatformModel,
    initial: Optional[Mapping] = None,
    iterations: int = 2000,
    start_temperature: float = 0.10,
    cooling: float = 0.995,
    seed: int = 23,
    cost_fn: CostFn = default_cost,
) -> Mapping:
    """Refine a mapping by simulated annealing.

    *start_temperature* is relative to the initial cost (0.10 = uphill
    moves of 10% of the initial cost are readily accepted early on).
    """
    if iterations < 1:
        raise ValueError(f"need >=1 iteration, got {iterations}")
    if not 0.0 < cooling < 1.0:
        raise ValueError(f"cooling must be in (0,1), got {cooling}")
    rng = RandomStreams(seed).get("anneal")
    routing = build_routing(platform.topology)
    current = dict(initial) if initial else greedy_load_balance_map(graph, platform)
    names = list(graph.tasks)
    current_cost = cost_fn(
        evaluate_mapping(graph, platform, current, routing)
    )
    best = dict(current)
    best_cost = current_cost
    temperature = start_temperature * max(current_cost, 1.0)
    for _ in range(iterations):
        candidate = dict(current)
        if rng.random() < 0.7 or len(names) < 2:
            # Move one task to a different PE.
            task = rng.choice(names)
            new_pe = rng.randrange(platform.num_pes)
            if new_pe == candidate[task]:
                new_pe = (new_pe + 1) % platform.num_pes
            candidate[task] = new_pe
        else:
            # Swap the placements of two tasks.
            a, b = rng.sample(names, 2)
            candidate[a], candidate[b] = candidate[b], candidate[a]
        candidate_cost = cost_fn(
            evaluate_mapping(graph, platform, candidate, routing)
        )
        delta = candidate_cost - current_cost
        if delta <= 0 or (
            temperature > 1e-12 and rng.random() < math.exp(-delta / temperature)
        ):
            current = candidate
            current_cost = candidate_cost
            if current_cost < best_cost:
                best = dict(current)
                best_cost = current_cost
        temperature *= cooling
    return best
