"""Simulated-annealing mapping refinement.

Starts from a constructive mapping and explores single-task moves and
pairwise swaps under a geometric cooling schedule, accepting uphill
moves with the Metropolis criterion.  This is the "automate
optimization where possible" backstop: slower than the greedy mappers
but consistently at least as good (experiment E15's ablation).

Candidate costs come from :class:`~repro.mapping.evaluator
.MappingEvaluator` incremental delta evaluation — apply-move/undo on
flat arrays instead of ``dict(current)`` copies plus a full re-list-
scheduling per iteration.  The RNG draw sequence and every cost are
bit-identical to the original dict-based implementation (proved by
``tests/mapping/test_evaluator.py``), so fixed seeds reproduce the
seed-era mappings exactly, only faster.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

from repro.mapping.evaluate import Mapping, MappingCost, PlatformModel
from repro.mapping.evaluator import MappingEvaluator
from repro.mapping.mapper import greedy_load_balance_map
from repro.mapping.taskgraph import TaskGraph
from repro.sim.rng import RandomStreams

CostFn = Callable[[MappingCost], float]


def default_cost(cost: MappingCost) -> float:
    """Makespan with a light communication tiebreaker."""
    return cost.makespan_cycles + 0.01 * cost.total_comm_cycles


def anneal_map(
    graph: TaskGraph,
    platform: PlatformModel,
    initial: Optional[Mapping] = None,
    iterations: int = 2000,
    start_temperature: float = 0.10,
    cooling: float = 0.995,
    seed: int = 23,
    cost_fn: CostFn = default_cost,
    evaluator: Optional[MappingEvaluator] = None,
) -> Mapping:
    """Refine a mapping by simulated annealing.

    *start_temperature* is relative to the initial cost (0.10 = uphill
    moves of 10% of the initial cost are readily accepted early on).
    Pass a shared *evaluator* (same graph and platform) to skip the
    per-call precomputation inside sweeps.
    """
    if iterations < 1:
        raise ValueError(f"need >=1 iteration, got {iterations}")
    if not 0.0 < cooling < 1.0:
        raise ValueError(f"cooling must be in (0,1), got {cooling}")
    rng = RandomStreams(seed).get("anneal")
    if evaluator is None:
        evaluator = MappingEvaluator(graph, platform)
    elif evaluator.platform != platform:
        raise ValueError(
            "evaluator was built for a different platform than the one "
            "passed to anneal_map"
        )
    elif evaluator.graph is not graph:
        raise ValueError(
            "evaluator was built for a different graph than the one "
            "passed to anneal_map"
        )
    current = dict(initial) if initial else greedy_load_balance_map(graph, platform)
    names = list(graph.tasks)
    num_pes = platform.num_pes
    state = evaluator.incremental(current)
    current_cost = cost_fn(state.cost())
    best = state.snapshot()
    best_cost = current_cost
    temperature = start_temperature * max(current_cost, 1.0)
    for _ in range(iterations):
        if rng.random() < 0.7 or len(names) < 2:
            # Move one task to a different PE.
            task = rng.choice(names)
            new_pe = rng.randrange(num_pes)
            if new_pe == state.pe_of(task):
                new_pe = (new_pe + 1) % num_pes
            moves = [(task, new_pe)]
        else:
            # Swap the placements of two tasks.
            a, b = rng.sample(names, 2)
            moves = [(a, state.pe_of(b)), (b, state.pe_of(a))]
        candidate_cost = cost_fn(state.propose(moves))
        delta = candidate_cost - current_cost
        if delta <= 0 or (
            temperature > 1e-12 and rng.random() < math.exp(-delta / temperature)
        ):
            state.commit()
            current_cost = candidate_cost
            if current_cost < best_cost:
                best = state.snapshot()
                best_cost = current_cost
        else:
            state.reject()
        temperature *= cooling
    return evaluator.to_mapping(best)
