"""Application task graphs.

A :class:`TaskGraph` is a DAG of :class:`Task` nodes (compute weight in
reference-RISC cycles, optional per-processor-kind speedups) with
weighted edges (bytes communicated).  Generators produce the structures
the paper's driver domains exhibit: packet-processing pipelines,
fork-join data parallelism, and layered random DAGs for stress tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class Task:
    """One schedulable unit of application work.

    Attributes
    ----------
    name:
        Unique task name.
    compute_cycles:
        Cycles on the reference (GP RISC) processor.
    affinity:
        Optional per-processor-kind speedup factors, e.g.
        ``{"dsp": 4.0}`` — the task runs 4x faster on a DSP.
    """

    name: str
    compute_cycles: float
    affinity: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.compute_cycles < 0:
            raise ValueError(f"task {self.name!r}: negative compute weight")
        for kind, factor in self.affinity:
            if factor <= 0:
                raise ValueError(
                    f"task {self.name!r}: non-positive affinity for {kind!r}"
                )

    def cycles_on(self, pe_kind: str) -> float:
        """Cycles when run on a processor of *pe_kind*."""
        for kind, factor in self.affinity:
            if kind == pe_kind:
                return self.compute_cycles / factor
        return self.compute_cycles


class TaskGraph:
    """A DAG of tasks with communication volumes on edges."""

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self.tasks: Dict[str, Task] = {}
        self.edges: Dict[Tuple[str, str], float] = {}
        self._succ: Dict[str, List[str]] = {}
        self._pred: Dict[str, List[str]] = {}

    def add_task(self, task: Task) -> Task:
        if task.name in self.tasks:
            raise ValueError(f"duplicate task {task.name!r}")
        self.tasks[task.name] = task
        self._succ[task.name] = []
        self._pred[task.name] = []
        return task

    def add_edge(self, src: str, dst: str, bytes_transferred: float) -> None:
        for name in (src, dst):
            if name not in self.tasks:
                raise ValueError(f"unknown task {name!r}")
        if src == dst:
            raise ValueError(f"self-edge on task {src!r}")
        if (src, dst) in self.edges:
            raise ValueError(f"duplicate edge {src!r}->{dst!r}")
        if bytes_transferred < 0:
            raise ValueError(f"negative transfer on {src!r}->{dst!r}")
        self.edges[(src, dst)] = bytes_transferred
        self._succ[src].append(dst)
        self._pred[dst].append(src)
        if self._has_cycle():
            # Roll back to keep the graph usable.
            del self.edges[(src, dst)]
            self._succ[src].remove(dst)
            self._pred[dst].remove(src)
            raise ValueError(f"edge {src!r}->{dst!r} would create a cycle")

    def successors(self, name: str) -> List[str]:
        return list(self._succ[name])

    def predecessors(self, name: str) -> List[str]:
        return list(self._pred[name])

    def topological_order(self) -> List[str]:
        """Kahn topological sort (deterministic by insertion order)."""
        in_degree = {name: len(self._pred[name]) for name in self.tasks}
        ready = [name for name in self.tasks if in_degree[name] == 0]
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for succ in self._succ[name]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.tasks):  # pragma: no cover - guarded by add_edge
            raise ValueError("task graph contains a cycle")
        return order

    def total_compute(self) -> float:
        return sum(t.compute_cycles for t in self.tasks.values())

    def total_communication(self) -> float:
        return sum(self.edges.values())

    def critical_path_cycles(self) -> float:
        """Longest compute path ignoring communication (lower bound)."""
        longest: Dict[str, float] = {}
        for name in self.topological_order():
            task = self.tasks[name]
            best_pred = max(
                (longest[p] for p in self._pred[name]), default=0.0
            )
            longest[name] = best_pred + task.compute_cycles
        return max(longest.values(), default=0.0)

    def _has_cycle(self) -> bool:
        in_degree = {name: len(self._pred[name]) for name in self.tasks}
        ready = [name for name in self.tasks if in_degree[name] == 0]
        seen = 0
        while ready:
            name = ready.pop()
            seen += 1
            for succ in self._succ[name]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        return seen != len(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)


def pipeline_graph(
    stages: int,
    cycles_per_stage: float = 1000.0,
    bytes_per_edge: float = 256.0,
) -> TaskGraph:
    """A linear packet-processing pipeline (the networking shape)."""
    if stages < 1:
        raise ValueError(f"pipeline needs >=1 stage, got {stages}")
    graph = TaskGraph(name=f"pipeline-{stages}")
    for i in range(stages):
        graph.add_task(Task(f"stage{i}", cycles_per_stage))
    for i in range(stages - 1):
        graph.add_edge(f"stage{i}", f"stage{i+1}", bytes_per_edge)
    return graph


def fork_join_graph(
    width: int,
    branch_cycles: float = 1000.0,
    bytes_per_edge: float = 128.0,
) -> TaskGraph:
    """Scatter/compute/gather data parallelism (the multimedia shape)."""
    if width < 1:
        raise ValueError(f"fork-join needs >=1 branch, got {width}")
    graph = TaskGraph(name=f"forkjoin-{width}")
    graph.add_task(Task("fork", branch_cycles / 10.0))
    graph.add_task(Task("join", branch_cycles / 10.0))
    for i in range(width):
        graph.add_task(Task(f"branch{i}", branch_cycles))
        graph.add_edge("fork", f"branch{i}", bytes_per_edge)
        graph.add_edge(f"branch{i}", "join", bytes_per_edge)
    return graph


def layered_random_graph(
    tasks: int,
    layers: int = 5,
    edge_probability: float = 0.3,
    seed: int = 7,
    min_cycles: float = 200.0,
    max_cycles: float = 4000.0,
    max_bytes: float = 1024.0,
) -> TaskGraph:
    """A layered random DAG (TGFF-style) for mapper stress tests."""
    if tasks < layers:
        raise ValueError(f"need tasks >= layers ({tasks} < {layers})")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge probability must be in [0,1]")
    rng = RandomStreams(seed).get("taskgraph")
    graph = TaskGraph(name=f"random-{tasks}")
    layer_of: Dict[str, int] = {}
    names_by_layer: List[List[str]] = [[] for _ in range(layers)]
    for index in range(tasks):
        layer = index % layers
        name = f"t{index}"
        cycles = rng.uniform(min_cycles, max_cycles)
        # Give a third of tasks a DSP/ASIP affinity to exercise
        # heterogeneity-aware mapping.
        affinity: Tuple[Tuple[str, float], ...] = ()
        roll = rng.random()
        if roll < 0.2:
            affinity = (("dsp", rng.uniform(2.0, 5.0)),)
        elif roll < 0.33:
            affinity = (("asip", rng.uniform(4.0, 10.0)),)
        graph.add_task(Task(name, cycles, affinity))
        layer_of[name] = layer
        names_by_layer[layer].append(name)
    for layer in range(layers - 1):
        for src in names_by_layer[layer]:
            for dst in names_by_layer[layer + 1]:
                if rng.random() < edge_probability:
                    graph.add_edge(src, dst, rng.uniform(32.0, max_bytes))
    # Guarantee weak connectivity layer to layer.
    for layer in range(layers - 1):
        src = names_by_layer[layer][0]
        dst = names_by_layer[layer + 1][0]
        if (src, dst) not in graph.edges:
            graph.add_edge(src, dst, 64.0)
    return graph
