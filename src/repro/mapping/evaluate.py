"""Mapping evaluation: the analytic platform cost model.

Given a task graph, a platform description (PE kinds + NoC routing) and
a mapping, computes makespan by list scheduling in topological order:
each task starts when its processor is free and its inputs have arrived
(communication cost = bytes/link-bandwidth serialization + hop-distance
latency; zero between co-located tasks).  Also reports load imbalance
and total NoC traffic — the quantities the MultiFlex exploration loop
optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.mapping.taskgraph import TaskGraph
from repro.noc.routing import RoutingTable
from repro.noc.topology import Topology, TopologyKind

#: Type alias: task name -> PE index.
Mapping = Dict[str, int]


@dataclass(frozen=True)
class PlatformModel:
    """The slice of a platform the analytic evaluator needs."""

    pe_kinds: List[str]
    topology: Topology
    router_delay: float = 2.0
    link_bytes_per_cycle: float = 8.0

    @property
    def num_pes(self) -> int:
        return len(self.pe_kinds)


@dataclass(frozen=True)
class MappingCost:
    """Evaluation result for one mapping."""

    makespan_cycles: float
    total_comm_cycles: float
    load_imbalance: float     # max PE busy / mean PE busy
    noc_byte_hops: float      # traffic-distance product
    mapper: str = ""

    def as_row(self) -> dict:
        return {
            "mapper": self.mapper,
            "makespan": round(self.makespan_cycles, 1),
            "comm_cycles": round(self.total_comm_cycles, 1),
            "imbalance": round(self.load_imbalance, 3),
            "byte_hops": round(self.noc_byte_hops, 1),
        }


def communication_cycles(
    platform: PlatformModel,
    routing: RoutingTable,
    src_pe: int,
    dst_pe: int,
    bytes_transferred: float,
) -> float:
    """Cycles for a transfer between two PEs (0 if co-located)."""
    if src_pe == dst_pe:
        return 0.0
    topo = platform.topology
    if topo.kind is TopologyKind.BUS:
        hops = 1
    else:
        hops = routing.hops(
            topo.terminal_router[src_pe], topo.terminal_router[dst_pe]
        )
        hops = max(1, hops)
    serialization = bytes_transferred / platform.link_bytes_per_cycle
    return hops * platform.router_delay + serialization


def evaluate_mapping(
    graph: TaskGraph,
    platform: PlatformModel,
    mapping: Mapping,
    routing: Optional[RoutingTable] = None,
    mapper_name: str = "",
) -> MappingCost:
    """List-schedule the mapped graph and report costs.

    This is the reference scheduling kernel; the optimized copies in
    :mod:`repro.mapping.evaluator` must stay in lockstep with it (see
    ``MappingEvaluator.evaluate_assignment``).

    *routing* is required (it was deprecated-optional in PR 2, a hard
    error since PR 3): pass
    ``cached_routing(platform.topology)`` — see
    :func:`repro.noc.routing.cached_routing` — or use
    :class:`repro.mapping.evaluator.MappingEvaluator`, which also
    precomputes the per-(graph, platform) arrays.
    """
    _validate(graph, platform, mapping)
    if routing is None:
        raise TypeError(
            "evaluate_mapping() requires a routing table; pass "
            "repro.noc.routing.cached_routing(platform.topology) (shared "
            "BFS memo) or use repro.mapping.evaluator.MappingEvaluator"
        )
    pe_free = [0.0] * platform.num_pes
    pe_busy = [0.0] * platform.num_pes
    finish: Dict[str, float] = {}
    total_comm = 0.0
    byte_hops = 0.0
    for name in graph.topological_order():
        task = graph.tasks[name]
        pe = mapping[name]
        ready = 0.0
        for pred in graph.predecessors(name):
            volume = graph.edges[(pred, name)]
            comm = communication_cycles(
                platform, routing, mapping[pred], pe, volume
            )
            total_comm += comm
            if mapping[pred] != pe:
                src_r = platform.topology.terminal_router[mapping[pred]]
                dst_r = platform.topology.terminal_router[pe]
                hops = (
                    1
                    if platform.topology.kind is TopologyKind.BUS
                    else max(1, routing.hops(src_r, dst_r))
                )
                byte_hops += volume * hops
            ready = max(ready, finish[pred] + comm)
        start = max(ready, pe_free[pe])
        duration = task.cycles_on(platform.pe_kinds[pe])
        finish[name] = start + duration
        pe_free[pe] = finish[name]
        pe_busy[pe] += duration
    makespan = max(finish.values(), default=0.0)
    mean_busy = sum(pe_busy) / len(pe_busy) if pe_busy else 0.0
    imbalance = max(pe_busy) / mean_busy if mean_busy > 0 else float("inf")
    return MappingCost(
        makespan_cycles=makespan,
        total_comm_cycles=total_comm,
        load_imbalance=imbalance,
        noc_byte_hops=byte_hops,
        mapper=mapper_name,
    )


def _validate(graph: TaskGraph, platform: PlatformModel, mapping: Mapping) -> None:
    missing = set(graph.tasks) - set(mapping)
    if missing:
        raise ValueError(f"mapping misses tasks: {sorted(missing)[:5]}")
    for name, pe in mapping.items():
        if name not in graph.tasks:
            raise ValueError(f"mapping contains unknown task {name!r}")
        if not 0 <= pe < platform.num_pes:
            raise ValueError(
                f"task {name!r} mapped to PE {pe}, platform has "
                f"{platform.num_pes}"
            )
