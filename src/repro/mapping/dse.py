"""Design-space exploration.

Sweeps (platform configuration x mapper) over a task graph and extracts
the Pareto-efficient points — the "rapid exploration and optimization"
loop of Section 7.2.  Platform configurations vary PE count, the PE
kind mix, and the NoC topology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.engine.registry import scenario
from repro.mapping.anneal import anneal_map
from repro.mapping.evaluate import MappingCost, PlatformModel
from repro.mapping.evaluator import MappingEvaluator
from repro.mapping.mapper import MAPPERS, run_mapper
from repro.mapping.taskgraph import TaskGraph
from repro.noc.topology import TopologyKind, make_topology
from repro.platform.spec import PE_BASE_TRANSISTORS, PE_TRANSISTORS_PER_THREAD


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated (platform, mapper) combination."""

    num_pes: int
    topology: str
    pe_mix: str
    mapper: str
    cost: MappingCost
    area_proxy: float   # transistor-count proxy for the PE array + NoC

    def objectives(self) -> tuple[float, float]:
        """(makespan, area) — the two axes Pareto extraction uses."""
        return self.cost.makespan_cycles, self.area_proxy


def make_platform_model(
    num_pes: int,
    topology: TopologyKind | str = TopologyKind.MESH,
    dsp_fraction: float = 0.0,
    asip_fraction: float = 0.0,
) -> PlatformModel:
    """A PlatformModel with a given heterogeneous PE mix."""
    if num_pes < 1:
        raise ValueError(f"need >=1 PE, got {num_pes}")
    if dsp_fraction + asip_fraction > 1.0 + 1e-9:
        raise ValueError("PE-mix fractions exceed 1.0")
    if isinstance(topology, str):
        topology = TopologyKind(topology)
    num_dsp = int(round(num_pes * dsp_fraction))
    num_asip = int(round(num_pes * asip_fraction))
    kinds = (
        ["dsp"] * num_dsp
        + ["asip"] * num_asip
        + ["gp_risc"] * (num_pes - num_dsp - num_asip)
    )
    # Some topologies need a minimum size (ring/torus); extra terminals
    # beyond num_pes are simply left unused.
    return PlatformModel(
        pe_kinds=kinds,
        topology=make_topology(topology, max(3, num_pes)),
    )


def area_proxy(num_pes: int, topology_cost: float) -> float:
    """Transistor-count proxy: PE array + NoC wiring cost."""
    pe_tx = num_pes * (PE_BASE_TRANSISTORS + 4 * PE_TRANSISTORS_PER_THREAD)
    return pe_tx + 2000.0 * topology_cost


def explore(
    graph: TaskGraph,
    pe_counts: Sequence[int] = (4, 8, 16),
    topologies: Sequence[TopologyKind] = (
        TopologyKind.MESH,
        TopologyKind.FAT_TREE,
        TopologyKind.RING,
    ),
    mappers: Optional[Iterable[str]] = None,
    include_annealing: bool = False,
    dsp_fraction: float = 0.25,
    random_candidates: int = 0,
    candidate_seed: int = 17,
) -> List[DesignPoint]:
    """Full-factorial sweep; returns every evaluated design point.

    ``random_candidates > 0`` additionally scores that many random
    placements per platform through
    :meth:`~repro.mapping.evaluator.MappingEvaluator.evaluate_batch`
    (the vectorized DSE scoring path) and keeps the best as a
    ``random_best`` design point — a cheap sampled baseline between
    the constructive mappers and full annealing.
    """
    mapper_names = list(mappers) if mappers is not None else sorted(MAPPERS)
    points: List[DesignPoint] = []
    for num_pes in pe_counts:
        for topology in topologies:
            platform = make_platform_model(
                num_pes, topology, dsp_fraction=dsp_fraction
            )
            area = area_proxy(num_pes, platform.topology.wiring_cost())
            # One evaluator per (graph, platform): routing, topological
            # order and the hop matrix are built once per candidate
            # platform instead of once per mapper evaluation.
            evaluator = MappingEvaluator(graph, platform)
            for mapper_name in mapper_names:
                mapping = run_mapper(mapper_name, graph, platform)
                cost = evaluator.evaluate(mapping, mapper_name=mapper_name)
                points.append(
                    DesignPoint(
                        num_pes=num_pes,
                        topology=topology.value,
                        pe_mix=f"dsp{dsp_fraction:.0%}",
                        mapper=mapper_name,
                        cost=cost,
                        area_proxy=area,
                    )
                )
            if random_candidates > 0:
                from repro.sim.rng import RandomStreams

                rng = RandomStreams(candidate_seed).get(
                    f"dse.batch.{num_pes}.{topology.value}"
                )
                batch = [
                    [rng.randrange(num_pes) for _ in range(evaluator.num_tasks)]
                    for _ in range(random_candidates)
                ]
                costs = evaluator.evaluate_batch(
                    batch, mapper_name="random_best"
                )
                best = min(
                    costs, key=lambda c: c.makespan_cycles
                )
                points.append(
                    DesignPoint(
                        num_pes=num_pes,
                        topology=topology.value,
                        pe_mix=f"dsp{dsp_fraction:.0%}",
                        mapper="random_best",
                        cost=best,
                        area_proxy=area,
                    )
                )
            if include_annealing:
                mapping = anneal_map(
                    graph, platform, iterations=500, evaluator=evaluator
                )
                cost = evaluator.evaluate(mapping, mapper_name="anneal")
                points.append(
                    DesignPoint(
                        num_pes=num_pes,
                        topology=topology.value,
                        pe_mix=f"dsp{dsp_fraction:.0%}",
                        mapper="anneal",
                        cost=cost,
                        area_proxy=area,
                    )
                )
    return points


@scenario(
    "DSE",
    tags=("mapping", "dse", "sweep"),
    params={
        "tasks": 40,
        "layers": 5,
        "seed": 7,
        "pe_counts": (4, 8, 16),
        "topologies": ("mesh", "fat_tree", "ring"),
        "dsp_fraction": 0.25,
        "include_annealing": False,
    },
)
def dse_sweep(
    tasks: int = 40,
    layers: int = 5,
    seed: int = 7,
    pe_counts: Sequence[int] = (4, 8, 16),
    topologies: Sequence[str] = ("mesh", "fat_tree", "ring"),
    dsp_fraction: float = 0.25,
    include_annealing: bool = False,
    random_candidates: int = 0,
) -> dict:
    """The Section-7.2 exploration loop as one engine scenario.

    ``spec.with_params(random_candidates=N)`` adds the batched random
    sampling baseline (vectorized scoring via ``evaluate_batch``).
    """
    from repro.mapping.taskgraph import layered_random_graph

    graph = layered_random_graph(tasks, layers=layers, seed=seed)
    points = explore(
        graph,
        pe_counts=tuple(pe_counts),
        topologies=tuple(TopologyKind(t) for t in topologies),
        include_annealing=include_annealing,
        dsp_fraction=dsp_fraction,
        random_candidates=random_candidates,
    )
    front = pareto_points(points)
    front_keys = {
        (p.num_pes, p.topology, p.mapper) for p in front
    }
    rows = [
        {
            "num_pes": p.num_pes,
            "topology": p.topology,
            "mapper": p.mapper,
            "makespan": round(p.cost.makespan_cycles, 1),
            "area_proxy": round(p.area_proxy),
            "pareto": (p.num_pes, p.topology, p.mapper) in front_keys,
        }
        for p in points
    ]
    return {
        "claim": (
            "DSOC mapping enables rapid exploration and optimization "
            "of the platform configuration space"
        ),
        "rows": rows,
        "verdict": {
            "points_evaluated": len(points),
            "pareto_front_size": len(front),
            "front_nonempty": 0 < len(front) < len(points),
            "front_spans_pe_counts": len({p.num_pes for p in front}) > 1,
        },
    }


def pareto_points(points: Iterable[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated points on (makespan, area) — both minimized."""
    points = list(points)
    front: List[DesignPoint] = []
    for point in points:
        makespan, area = point.objectives()
        dominated = False
        for other in points:
            if other is point:
                continue
            o_makespan, o_area = other.objectives()
            if (
                o_makespan <= makespan
                and o_area <= area
                and (o_makespan < makespan or o_area < area)
            ):
                dominated = True
                break
        if not dominated:
            front.append(point)
    front.sort(key=lambda p: p.objectives())
    return front
