"""Constructive mapping heuristics.

Four mappers of increasing sophistication — the gap between the naive
ones and the communication-aware ones is the quantitative content of
the paper's claim that automated mapping tools are needed (E15):

* :func:`random_map` — uniformly random placement (the floor);
* :func:`round_robin_map` — naive task striping;
* :func:`greedy_load_balance_map` — longest-processing-time-first onto
  the least-loaded PE, affinity-aware;
* :func:`communication_aware_map` — greedy placement weighing both
  load and the NoC distance to already-placed neighbours.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.mapping.evaluate import Mapping, PlatformModel, communication_cycles
from repro.mapping.taskgraph import TaskGraph
from repro.noc.routing import cached_routing
from repro.sim.rng import RandomStreams


def random_map(
    graph: TaskGraph, platform: PlatformModel, seed: int = 11
) -> Mapping:
    """Place every task on a uniformly random PE."""
    rng = RandomStreams(seed).get("random_map")
    return {
        name: rng.randrange(platform.num_pes) for name in graph.tasks
    }


def round_robin_map(graph: TaskGraph, platform: PlatformModel) -> Mapping:
    """Stripe tasks across PEs in topological order."""
    mapping: Mapping = {}
    for index, name in enumerate(graph.topological_order()):
        mapping[name] = index % platform.num_pes
    return mapping


def greedy_load_balance_map(
    graph: TaskGraph, platform: PlatformModel
) -> Mapping:
    """LPT: heaviest task first onto the PE where it finishes soonest.

    Affinity-aware: the load added is the task's cycles *on that PE's
    kind*, so DSP-friendly tasks gravitate to DSPs.
    """
    load = [0.0] * platform.num_pes
    mapping: Mapping = {}
    by_weight = sorted(
        graph.tasks.values(), key=lambda t: -t.compute_cycles
    )
    for task in by_weight:
        best_pe = min(
            range(platform.num_pes),
            key=lambda pe: load[pe] + task.cycles_on(platform.pe_kinds[pe]),
        )
        mapping[task.name] = best_pe
        load[best_pe] += task.cycles_on(platform.pe_kinds[best_pe])
    return mapping


def communication_aware_map(
    graph: TaskGraph,
    platform: PlatformModel,
    comm_weight: float = 1.0,
) -> Mapping:
    """HEFT-style earliest-finish-time placement.

    Tasks are visited in topological order; for each candidate PE the
    actual start time is computed (processor availability and arrival
    of every predecessor's data over the NoC), and the task goes to
    the PE where it *finishes* earliest.  This is the list-scheduling
    heuristic the evaluator itself uses, so the mapper optimizes the
    true objective rather than a load proxy.
    """
    if comm_weight < 0:
        raise ValueError(f"negative communication weight {comm_weight}")
    routing = cached_routing(platform.topology)
    pe_free = [0.0] * platform.num_pes
    finish: dict[str, float] = {}
    mapping: Mapping = {}
    for name in graph.topological_order():
        task = graph.tasks[name]
        preds = [
            (pred, graph.edges[(pred, name)])
            for pred in graph.predecessors(name)
        ]

        def finish_time(pe: int) -> float:
            ready = 0.0
            for pred, volume in preds:
                comm = comm_weight * communication_cycles(
                    platform, routing, mapping[pred], pe, volume
                )
                ready = max(ready, finish[pred] + comm)
            start = max(ready, pe_free[pe])
            return start + task.cycles_on(platform.pe_kinds[pe])

        best_pe = min(range(platform.num_pes), key=finish_time)
        finish[name] = finish_time(best_pe)
        pe_free[best_pe] = finish[name]
        mapping[name] = best_pe
    return mapping


#: Registry used by the DSE sweeps and benchmarks.
MAPPERS: Dict[str, object] = {
    "random": random_map,
    "round_robin": lambda g, p, seed=0: round_robin_map(g, p),
    "greedy_load": lambda g, p, seed=0: greedy_load_balance_map(g, p),
    "comm_aware": lambda g, p, seed=0: communication_aware_map(g, p),
}


def run_mapper(
    name: str,
    graph: TaskGraph,
    platform: PlatformModel,
    seed: int = 11,
) -> Mapping:
    """Run a registered mapper by name."""
    if name not in MAPPERS:
        raise KeyError(
            f"unknown mapper {name!r}; known: {', '.join(sorted(MAPPERS))}"
        )
    mapper = MAPPERS[name]
    if name == "random":
        return mapper(graph, platform, seed)
    return mapper(graph, platform)
