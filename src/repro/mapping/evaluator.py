"""Precomputed, incrementally-updatable mapping evaluation.

:func:`repro.mapping.evaluate.evaluate_mapping` is the reference cost
model: dict-keyed, rebuilt from scratch on every call.  That is the hot
path of the annealer (~2000 evaluations per run) and of every DSE
sweep, so this module precomputes everything that depends only on the
(graph, platform) pair once:

* integer task indices in topological order;
* per-task predecessor lists as ``(pred_index, volume, serialization)``
  triples;
* a PE×PE hop matrix (bus special case and ``max(1, hops)`` folded in)
  and the matching precomputed ``hops * router_delay`` term;
* a task×PE compute-cycles matrix (affinity resolved per PE kind).

:class:`MappingEvaluator.evaluate` then list-schedules over flat arrays
and — by performing the same floating-point operations in the same
order — returns **bit-identical** :class:`MappingCost` values to the
reference implementation.

:meth:`MappingEvaluator.evaluate_batch` scores whole candidate sets at
once: when numpy is available (the optional ``[perf]`` extra) the
list-scheduling recurrence runs with every per-task scalar widened to
a batch-axis vector, accumulating in the reference's exact operation
order — so batch results are bit-identical to one-at-a-time
evaluation with or without numpy (asserted by the equivalence tests).

:meth:`MappingEvaluator.incremental` adds exact delta evaluation for
move/swap neighbourhoods: list scheduling consumes tasks in a fixed
topological order, so a move of the task at position ``p`` can only
change scheduling state from ``p`` onwards.  The incremental state
checkpoints the scheduler state (per-PE free/busy times, running
communication totals, prefix finish maximum) before every position and
re-schedules only the suffix, which halves the work of a random move on
average and avoids the ``dict(current)`` copy entirely.  Prefix sums
are reused unchanged and suffix terms are accumulated in the original
order, so incremental costs are float-identical to full evaluation
(the equivalence tests in ``tests/mapping/test_evaluator.py`` assert
exact equality, not approximation).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.mapping.evaluate import (
    Mapping,
    MappingCost,
    PlatformModel,
    _validate,
)
from repro.mapping.taskgraph import TaskGraph
from repro.noc.routing import RoutingTable, cached_routing
from repro.noc.topology import TopologyKind

try:  # numpy is optional (the [perf] extra); every path has a fallback
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via use_numpy=False
    _np = None

#: A proposed placement change: (task name, new PE index).
Move = Tuple[str, int]


class MappingEvaluator:
    """Shared per-(graph, platform) evaluation state.

    Build one per (graph, platform) pair and reuse it across every
    mapping you evaluate — constructive mappers, annealing, sweeps.
    The routing table defaults to the shared :func:`cached_routing`
    memo, so repeated construction for the same topology does not
    re-run BFS either.
    """

    def __init__(
        self,
        graph: TaskGraph,
        platform: PlatformModel,
        routing: Optional[RoutingTable] = None,
        use_numpy: Optional[bool] = None,
    ) -> None:
        self.graph = graph
        self.platform = platform
        # None = auto (numpy if importable).  The scalar scheduling
        # kernels always run on plain lists (faster for single
        # evaluations); numpy accelerates :meth:`evaluate_batch`.
        self.use_numpy = (_np is not None) if use_numpy is None else (
            bool(use_numpy) and _np is not None
        )
        self._batch_arrays = None  # built lazily on first batch call
        self.routing = routing if routing is not None else cached_routing(
            platform.topology
        )
        self.order: List[str] = graph.topological_order()
        self.index: Dict[str, int] = {
            name: i for i, name in enumerate(self.order)
        }
        self.num_tasks = len(self.order)
        self.num_pes = platform.num_pes

        # task×PE compute cycles with affinity resolved once.
        kinds = platform.pe_kinds
        self.cycles: List[List[float]] = []
        for name in self.order:
            task = graph.tasks[name]
            by_kind = {kind: task.cycles_on(kind) for kind in set(kinds)}
            self.cycles.append([by_kind[kind] for kind in kinds])

        # Predecessors as (pred_position, volume, serialization) in the
        # graph's insertion order — the order the reference accumulates
        # communication in, which exact equivalence depends on.
        inv_bw = platform.link_bytes_per_cycle
        self.preds: List[List[Tuple[int, float, float]]] = []
        for name in self.order:
            rows = []
            for pred in graph.predecessors(name):
                volume = graph.edges[(pred, name)]
                rows.append((self.index[pred], volume, volume / inv_bw))
            self.preds.append(rows)

        # PE×PE hop matrix and its precomputed router-delay product.
        # Built as matrix ops when numpy is present (gather the PE
        # routers' distance submatrix, fold in the bus special case and
        # the max(1, hops) floor), as nested loops otherwise; both
        # produce identical values and the scalar kernels always index
        # the plain nested lists.
        topo = platform.topology
        is_bus = topo.kind is TopologyKind.BUS
        tr = topo.terminal_router
        dist = self.routing.distance
        p = self.num_pes
        if self.use_numpy:
            pe_routers = _np.asarray(tr[:p], dtype=_np.intp)
            if is_bus:
                hops = _np.ones((p, p), dtype=_np.int64)
            else:
                sub = _np.asarray(dist, dtype=_np.int64)[
                    pe_routers[:, None], pe_routers[None, :]
                ]
                if (sub < 0).any():
                    bad = _np.argwhere(sub < 0)[0]
                    raise ValueError(
                        f"routers {tr[int(bad[0])]},{tr[int(bad[1])]} "
                        "disconnected"
                    )
                hops = _np.maximum(sub, 1)
            _np.fill_diagonal(hops, 0)
            self.hop = [[int(h) for h in row] for row in hops]
            delay = hops * float(platform.router_delay)
            self.hop_delay = [[float(d) for d in row] for row in delay]
        else:
            self.hop = []
            self.hop_delay = []
            for src in range(p):
                hop_row: List[int] = []
                delay_row: List[float] = []
                for dst in range(p):
                    if src == dst:
                        hops = 0
                    elif is_bus:
                        hops = 1
                    else:
                        hops = dist[tr[src]][tr[dst]]
                        if hops < 0:
                            raise ValueError(
                                f"routers {tr[src]},{tr[dst]} disconnected"
                            )
                        if hops < 1:
                            hops = 1
                    hop_row.append(hops)
                    delay_row.append(hops * platform.router_delay)
                self.hop.append(hop_row)
                self.hop_delay.append(delay_row)

    # -- dict-facing API ----------------------------------------------------

    def assignment(self, mapping: Mapping) -> List[int]:
        """Validate *mapping* and flatten it to a topo-ordered array."""
        _validate(self.graph, self.platform, mapping)
        return [mapping[name] for name in self.order]

    def to_mapping(self, assign: Sequence[int]) -> Mapping:
        """Inverse of :meth:`assignment`."""
        return {name: assign[i] for i, name in enumerate(self.order)}

    def evaluate(self, mapping: Mapping, mapper_name: str = "") -> MappingCost:
        """Full evaluation; bit-identical to :func:`evaluate_mapping`."""
        return self.evaluate_assignment(
            self.assignment(mapping), mapper_name=mapper_name
        )

    def evaluate_assignment(
        self, assign: Sequence[int], mapper_name: str = ""
    ) -> MappingCost:
        """Full list-scheduling pass over a flat assignment array.

        LOCKSTEP: this scheduling loop exists four times and every
        cost-model change must be mirrored in all of them —
        ``evaluate.evaluate_mapping`` (the dict reference), this
        method, ``IncrementalMapping._evaluate_suffix`` and
        ``IncrementalMapping._recompute``.  The copies differ only in
        bookkeeping (sparse finish overlay, checkpoint writes); they
        are kept inline because a shared kernel parameterized on
        callbacks costs the hot loop the very calls this module exists
        to remove.  ``tests/mapping/test_evaluator.py`` asserts the
        four stay bit-identical.
        """
        pe_free = [0.0] * self.num_pes
        pe_busy = [0.0] * self.num_pes
        finish = [0.0] * self.num_tasks
        total_comm = 0.0
        byte_hops = 0.0
        makespan = 0.0
        hop = self.hop
        hop_delay = self.hop_delay
        for i in range(self.num_tasks):
            pe = assign[i]
            ready = 0.0
            for j, volume, ser in self.preds[i]:
                src = assign[j]
                if src == pe:
                    arrival = finish[j]
                else:
                    comm = hop_delay[src][pe] + ser
                    total_comm += comm
                    byte_hops += volume * hop[src][pe]
                    arrival = finish[j] + comm
                if arrival > ready:
                    ready = arrival
            free = pe_free[pe]
            start = ready if ready > free else free
            duration = self.cycles[i][pe]
            f = start + duration
            finish[i] = f
            pe_free[pe] = f
            pe_busy[pe] += duration
            if f > makespan:
                makespan = f
        return self._cost(makespan, total_comm, pe_busy, byte_hops, mapper_name)

    def incremental(self, mapping: Mapping) -> "IncrementalMapping":
        """An :class:`IncrementalMapping` positioned at *mapping*."""
        return IncrementalMapping(self, self.assignment(mapping))

    # -- batch scoring (DSE fast path) --------------------------------------

    def _batch_state(self):
        """Numpy views of the precomputed arrays (built once, lazily)."""
        if self._batch_arrays is None:
            self._batch_arrays = {
                "hop_delay": _np.asarray(self.hop_delay, dtype=_np.float64),
                "hop": _np.asarray(self.hop, dtype=_np.float64),
                "cycles": _np.asarray(self.cycles, dtype=_np.float64),
                # flattened predecessor triples + per-task offsets
                "pred_j": [
                    _np.asarray([j for j, _v, _s in rows], dtype=_np.intp)
                    for rows in self.preds
                ],
                "pred_volume": [
                    _np.asarray([v for _j, v, _s in rows], dtype=_np.float64)
                    for rows in self.preds
                ],
                "pred_ser": [
                    _np.asarray([s for _j, _v, s in rows], dtype=_np.float64)
                    for rows in self.preds
                ],
            }
        return self._batch_arrays

    def evaluate_batch(
        self,
        assignments: Sequence[Sequence[int]],
        mapper_name: str = "",
    ) -> List[MappingCost]:
        """Score many flat assignments at once.

        The numpy path runs the list-scheduling recurrence once with
        every per-task quantity widened to a batch-axis vector — one
        gather/scatter per (task, candidate-set) instead of a Python
        loop per candidate.  Accumulation order per candidate is
        exactly :meth:`evaluate_assignment`'s (elementwise adds over
        the same predecessor sequence; co-located predecessors add an
        exact ``0.0``), so results are **bit-identical** to evaluating
        each assignment alone, with or without numpy — the DSE sweeps
        may mix backends freely.
        """
        assignments = [list(a) for a in assignments]
        for assign in assignments:
            if len(assign) != self.num_tasks:
                raise ValueError(
                    f"assignment length {len(assign)} != {self.num_tasks} tasks"
                )
            for pe in assign:
                if not 0 <= pe < self.num_pes:
                    raise ValueError(
                        f"PE index {pe} out of range 0..{self.num_pes - 1}"
                    )
        if not assignments:
            return []
        if not self.use_numpy or len(assignments) < 2:
            return [
                self.evaluate_assignment(a, mapper_name=mapper_name)
                for a in assignments
            ]
        arrays = self._batch_state()
        hop_delay = arrays["hop_delay"]
        hop = arrays["hop"]
        cycles = arrays["cycles"]
        batch = _np.asarray(assignments, dtype=_np.intp)  # (B, T)
        b = batch.shape[0]
        rows = _np.arange(b)
        pe_free = _np.zeros((b, self.num_pes))
        pe_busy = _np.zeros((b, self.num_pes))
        finish = _np.zeros((b, self.num_tasks))
        total_comm = _np.zeros(b)
        byte_hops = _np.zeros(b)
        makespan = _np.zeros(b)
        zero = 0.0
        for i in range(self.num_tasks):
            pe = batch[:, i]  # (B,)
            j_idx = arrays["pred_j"][i]
            if j_idx.size:
                src = batch[:, j_idx]                       # (B, K)
                colocated = src == pe[:, None]
                comm = _np.where(
                    colocated,
                    zero,
                    hop_delay[src, pe[:, None]] + arrays["pred_ser"][i],
                )
                # Reference order: predecessors accumulate left to
                # right; elementwise column adds preserve it exactly.
                for k in range(j_idx.size):
                    total_comm += comm[:, k]
                byte_hops_k = _np.where(
                    colocated,
                    zero,
                    arrays["pred_volume"][i] * hop[src, pe[:, None]],
                )
                for k in range(j_idx.size):
                    byte_hops += byte_hops_k[:, k]
                arrival = finish[:, j_idx] + comm
                ready = arrival.max(axis=1)
            else:
                ready = _np.zeros(b)
            free = pe_free[rows, pe]
            start = _np.maximum(ready, free)
            duration = cycles[i, pe]
            f = start + duration
            finish[:, i] = f
            pe_free[rows, pe] = f
            pe_busy[rows, pe] += duration
            makespan = _np.maximum(makespan, f)
        # _cost re-sums each candidate's busy list sequentially, so the
        # imbalance math reuses the reference's exact operation order.
        return [
            self._cost(
                float(makespan[c]),
                float(total_comm[c]),
                [float(x) for x in pe_busy[c]],
                float(byte_hops[c]),
                mapper_name,
            )
            for c in range(b)
        ]

    def _cost(
        self,
        makespan: float,
        total_comm: float,
        pe_busy: Sequence[float],
        byte_hops: float,
        mapper_name: str = "",
    ) -> MappingCost:
        mean_busy = sum(pe_busy) / len(pe_busy) if pe_busy else 0.0
        imbalance = (
            max(pe_busy) / mean_busy if mean_busy > 0 else float("inf")
        )
        return MappingCost(
            makespan_cycles=makespan,
            total_comm_cycles=total_comm,
            load_imbalance=imbalance,
            noc_byte_hops=byte_hops,
            mapper=mapper_name,
        )


class IncrementalMapping:
    """Mutable assignment with checkpointed suffix re-evaluation.

    The propose/commit/reject protocol the annealer uses::

        state = evaluator.incremental(initial)
        cost = state.cost()                    # full MappingCost
        cand = state.propose([(task, pe)])     # exact candidate cost
        state.commit()                         # accept the proposal
        state.reject()                         # ...or drop it

    ``propose`` never mutates committed state; ``commit`` re-schedules
    the affected suffix once more to refresh the checkpoints.
    """

    def __init__(self, evaluator: MappingEvaluator, assign: List[int]) -> None:
        self.ev = evaluator
        self.assign = assign
        n = evaluator.num_tasks
        p = evaluator.num_pes
        # _free[i]/_busy[i]: per-PE scheduler state *before* topo
        # position i; index n holds the final state.  _comm/_bh/_maxfin
        # are the running totals/prefix-finish-max before position i.
        self._free: List[List[float]] = [[0.0] * p for _ in range(n + 1)]
        self._busy: List[List[float]] = [[0.0] * p for _ in range(n + 1)]
        self._comm: List[float] = [0.0] * (n + 1)
        self._bh: List[float] = [0.0] * (n + 1)
        self._maxfin: List[float] = [0.0] * (n + 1)
        self._finish: List[float] = [0.0] * n
        self._pending: Optional[List[Tuple[int, int, int]]] = None
        self._recompute(0)

    # -- queries ------------------------------------------------------------

    def cost(self, mapper_name: str = "") -> MappingCost:
        """The committed assignment's full cost."""
        n = self.ev.num_tasks
        return self.ev._cost(
            self._maxfin[n],
            self._comm[n],
            self._busy[n],
            self._bh[n],
            mapper_name,
        )

    def mapping(self) -> Mapping:
        """The committed assignment as a task-name dict."""
        return self.ev.to_mapping(self.assign)

    def snapshot(self) -> List[int]:
        """Copy of the committed flat assignment."""
        return list(self.assign)

    def pe_of(self, name: str) -> int:
        return self.assign[self.ev.index[name]]

    # -- propose / commit / reject ------------------------------------------

    def propose(self, moves: Sequence[Move]) -> MappingCost:
        """Exact cost of applying *moves*, without committing them.

        Only the suffix from the earliest moved task's topological
        position is re-scheduled; prefix totals come from checkpoints.
        """
        if self._pending is not None:
            raise RuntimeError("unresolved proposal: commit() or reject() first")
        ev = self.ev
        resolved = []
        for name, new_pe in moves:
            pos = ev.index[name]
            resolved.append((pos, self.assign[pos], new_pe))
        if not resolved:
            return self.cost()
        start = min(pos for pos, _old, _new in resolved)
        assign = self.assign
        for pos, _old, new_pe in resolved:
            assign[pos] = new_pe
        try:
            cost = self._evaluate_suffix(start)
        finally:
            for pos, old_pe, _new in resolved:
                assign[pos] = old_pe
        self._pending = resolved
        return cost

    def commit(self) -> None:
        """Apply the last proposal and refresh the checkpoints."""
        if self._pending is None:
            raise RuntimeError("no proposal to commit")
        resolved, self._pending = self._pending, None
        for pos, _old, new_pe in resolved:
            self.assign[pos] = new_pe
        self._recompute(min(pos for pos, _old, _new in resolved))

    def reject(self) -> None:
        """Drop the last proposal (committed state was never touched)."""
        self._pending = None

    # -- internals ----------------------------------------------------------

    def _evaluate_suffix(self, start: int) -> MappingCost:
        """Schedule positions ``start..n`` from the start checkpoint.

        LOCKSTEP copy of the scheduling kernel — see
        :meth:`MappingEvaluator.evaluate_assignment`.
        """
        ev = self.ev
        assign = self.assign
        finish = self._finish
        pe_free = list(self._free[start])
        pe_busy = list(self._busy[start])
        total_comm = self._comm[start]
        byte_hops = self._bh[start]
        makespan = self._maxfin[start]
        hop = ev.hop
        hop_delay = ev.hop_delay
        preds = ev.preds
        cycles = ev.cycles
        # Suffix finishes may differ from the committed ones; keep them
        # in a sparse overlay so committed state stays intact.
        new_finish: Dict[int, float] = {}
        for i in range(start, ev.num_tasks):
            pe = assign[i]
            ready = 0.0
            for j, volume, ser in preds[i]:
                fj = new_finish[j] if j >= start else finish[j]
                src = assign[j]
                if src == pe:
                    arrival = fj
                else:
                    comm = hop_delay[src][pe] + ser
                    total_comm += comm
                    byte_hops += volume * hop[src][pe]
                    arrival = fj + comm
                if arrival > ready:
                    ready = arrival
            free = pe_free[pe]
            begin = ready if ready > free else free
            duration = cycles[i][pe]
            f = begin + duration
            new_finish[i] = f
            pe_free[pe] = f
            pe_busy[pe] += duration
            if f > makespan:
                makespan = f
        return ev._cost(makespan, total_comm, pe_busy, byte_hops)

    def _recompute(self, start: int) -> None:
        """Re-schedule from *start* and refresh every checkpoint.

        LOCKSTEP copy of the scheduling kernel — see
        :meth:`MappingEvaluator.evaluate_assignment`.
        """
        ev = self.ev
        assign = self.assign
        finish = self._finish
        pe_free = list(self._free[start])
        pe_busy = list(self._busy[start])
        total_comm = self._comm[start]
        byte_hops = self._bh[start]
        makespan = self._maxfin[start]
        hop = ev.hop
        hop_delay = ev.hop_delay
        preds = ev.preds
        cycles = ev.cycles
        for i in range(start, ev.num_tasks):
            pe = assign[i]
            ready = 0.0
            for j, volume, ser in preds[i]:
                src = assign[j]
                if src == pe:
                    arrival = finish[j]
                else:
                    comm = hop_delay[src][pe] + ser
                    total_comm += comm
                    byte_hops += volume * hop[src][pe]
                    arrival = finish[j] + comm
                if arrival > ready:
                    ready = arrival
            free = pe_free[pe]
            begin = ready if ready > free else free
            duration = cycles[i][pe]
            f = begin + duration
            finish[i] = f
            pe_free[pe] = f
            pe_busy[pe] += duration
            if f > makespan:
                makespan = f
            self._free[i + 1] = list(pe_free)
            self._busy[i + 1] = list(pe_busy)
            self._comm[i + 1] = total_comm
            self._bh[i + 1] = byte_hops
            self._maxfin[i + 1] = makespan
