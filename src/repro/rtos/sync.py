"""RTOS synchronization primitives: semaphores and mailboxes.

Blocked tasks are queued in priority order (highest first), so a
release hands the resource to the most urgent waiter — the fixed-
priority discipline of the kernel carried into its services.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Deque, List, Tuple


class Semaphore:
    """A counting semaphore."""

    def __init__(self, initial: int = 1, name: str = "sem") -> None:
        if initial < 0:
            raise ValueError(f"negative initial count {initial}")
        self.name = name
        self._count = initial
        self._waiters: List[Tuple[int, int, Any]] = []
        self._seq = itertools.count()

    @property
    def count(self) -> int:
        return self._count

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def try_acquire(self) -> bool:
        """Non-blocking acquire (the kernel calls this)."""
        if self._count > 0:
            self._count -= 1
            return True
        return False

    def _enqueue(self, kernel, task) -> None:
        heapq.heappush(self._waiters, (task.priority, next(self._seq), task))

    def _release(self, kernel) -> None:
        if self._waiters:
            _prio, _seq, task = heapq.heappop(self._waiters)
            kernel._wake(task)
        else:
            self._count += 1


class Mailbox:
    """A FIFO message queue with priority-ordered receivers."""

    _EMPTY = object()

    def __init__(self, name: str = "mbox") -> None:
        self.name = name
        self._messages: Deque[Any] = deque()
        self._receivers: List[Tuple[int, int, Any]] = []
        self._seq = itertools.count()
        self.sent = 0
        self.received = 0

    @property
    def depth(self) -> int:
        return len(self._messages)

    def _send(self, kernel, message: Any) -> None:
        self.sent += 1
        if self._receivers:
            _prio, _seq, task = heapq.heappop(self._receivers)
            task._send_value = message
            self.received += 1
            kernel._wake(task)
        else:
            self._messages.append(message)

    def _try_recv(self) -> Any:
        if self._messages:
            self.received += 1
            return self._messages.popleft()
        return self._EMPTY

    def _enqueue(self, kernel, task) -> None:
        heapq.heappush(self._receivers, (task.priority, next(self._seq), task))
