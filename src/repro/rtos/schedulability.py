"""Rate-monotonic schedulability analysis.

The analytic companion to the kernel: the Liu & Layland utilization
bound and exact response-time analysis (RTA) for fixed-priority
preemptive scheduling.  The platform level of the paper needs these to
size processor allocations for real-time application stacks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class PeriodicTaskSpec:
    """One periodic hard-real-time task."""

    name: str
    period: float
    wcet: float          # worst-case execution time
    deadline: Optional[float] = None   # defaults to the period

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"{self.name}: period must be positive")
        if self.wcet <= 0:
            raise ValueError(f"{self.name}: WCET must be positive")
        if self.wcet > self.period:
            raise ValueError(f"{self.name}: WCET exceeds period")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"{self.name}: deadline must be positive")

    @property
    def effective_deadline(self) -> float:
        return self.deadline if self.deadline is not None else self.period


def utilization(tasks: List[PeriodicTaskSpec]) -> float:
    """Total CPU utilization of the task set."""
    return sum(t.wcet / t.period for t in tasks)


def liu_layland_bound(n: int) -> float:
    """The RM utilization bound ``n (2^{1/n} - 1)``; -> ln 2 ~ 0.693."""
    if n < 1:
        raise ValueError(f"need >=1 task, got {n}")
    return n * (2.0 ** (1.0 / n) - 1.0)


def rm_schedulable_by_bound(tasks: List[PeriodicTaskSpec]) -> bool:
    """Sufficient (not necessary) RM schedulability test."""
    return utilization(tasks) <= liu_layland_bound(len(tasks))


def response_time_analysis(
    tasks: List[PeriodicTaskSpec],
    context_switch: float = 0.0,
) -> Dict[str, float]:
    """Exact RTA for rate-monotonic priorities (shorter period = higher).

    Iterates ``R = C + sum_{hp} ceil(R / T_hp) * C_hp`` to fixpoint.
    Each job charges two context switches (in and out), making the cost
    of a software kernel vs a hardware scheduler visible in the response
    times.  Returns per-task worst-case response time; ``inf`` when the
    iteration diverges past the deadline.
    """
    if context_switch < 0:
        raise ValueError(f"negative context switch cost {context_switch}")
    ordered = sorted(tasks, key=lambda t: t.period)
    results: Dict[str, float] = {}
    for index, task in enumerate(ordered):
        cost = task.wcet + 2 * context_switch
        higher = ordered[:index]
        response = cost
        for _ in range(1000):
            interference = sum(
                math.ceil(response / hp.period) * (hp.wcet + 2 * context_switch)
                for hp in higher
            )
            new_response = cost + interference
            if new_response == response:
                break
            response = new_response
            if response > task.effective_deadline:
                response = math.inf
                break
        results[task.name] = response
    return results


def schedulable(
    tasks: List[PeriodicTaskSpec],
    context_switch: float = 0.0,
) -> bool:
    """Exact RM schedulability via RTA."""
    responses = response_time_analysis(tasks, context_switch)
    by_name = {t.name: t for t in tasks}
    return all(
        responses[name] <= by_name[name].effective_deadline
        for name in responses
    )


def max_context_switch_cost(
    tasks: List[PeriodicTaskSpec],
    upper: float = 10_000.0,
) -> float:
    """Largest context-switch cost at which the set stays schedulable.

    Quantifies the paper's hardware-OS-services point: a set that is
    schedulable with a 1-cycle hardware scheduler can be infeasible
    under a software kernel's switch cost.
    """
    if schedulable(tasks, upper):
        return upper
    lo, hi = 0.0, upper
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if schedulable(tasks, mid):
            lo = mid
        else:
            hi = mid
    return lo
