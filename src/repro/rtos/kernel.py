"""The RTOS kernel: fixed-priority scheduling with switch cost.

Tasks are generator functions yielding kernel commands:

* ``("compute", cycles)`` — occupy the CPU;
* ``("sleep", cycles)``  — release the CPU for a relative delay;
* ``("acquire", sem)`` / ``("release", sem)`` — semaphore ops;
* ``("send", mailbox, message)`` / ``("recv", mailbox)`` — messaging
  (``recv`` resumes with the message as the yielded value).

Scheduling is fixed-priority, non-preemptive at command granularity
(the run-to-yield discipline of lightweight embedded kernels): at every
dispatch point the highest-priority ready task runs its next command.
Switching to a different task than last time costs
``context_switch_cycles`` — set it to 1 for the paper's
hardware-assisted scheduler, to hundreds for a software kernel.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Generator, List, Optional

from repro.sim.core import Simulator, Timeout
from repro.sim.stats import Sampler


class TaskState(Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    SLEEPING = "sleeping"
    FINISHED = "finished"


@dataclass
class RtosTask:
    """One kernel task."""

    name: str
    priority: int                     # lower number = higher priority
    body: Generator[Any, Any, Any]
    state: TaskState = TaskState.READY
    activations: int = 0
    completions: int = 0
    response_times: Sampler = field(
        default_factory=lambda: Sampler("response")
    )
    _activated_at: float = 0.0
    _send_value: Any = None


class RtosKernel:
    """A single-CPU fixed-priority kernel."""

    def __init__(
        self,
        sim: Simulator,
        context_switch_cycles: float = 1.0,
        name: str = "rtos",
    ) -> None:
        if context_switch_cycles < 0:
            raise ValueError(
                f"negative context-switch cost {context_switch_cycles}"
            )
        self.sim = sim
        self.context_switch_cycles = context_switch_cycles
        self.name = name
        self._ready: List[tuple] = []   # (priority, seq, task)
        self._seq = itertools.count()
        self.tasks: Dict[str, RtosTask] = {}
        self._current: Optional[RtosTask] = None
        self._idle = True
        self.switches = 0
        self.busy_cycles = 0.0
        self.overhead_cycles = 0.0
        self._started = False

    # -- task management -----------------------------------------------------

    def create_task(
        self,
        name: str,
        priority: int,
        body_factory: Callable[[], Generator[Any, Any, Any]],
    ) -> RtosTask:
        """Register a task; it becomes ready at kernel start."""
        if name in self.tasks:
            raise ValueError(f"duplicate task {name!r}")
        task = RtosTask(name=name, priority=priority, body=body_factory())
        task._activated_at = self.sim.now
        task.activations += 1
        self.tasks[name] = task
        self._make_ready(task)
        return task

    def start(self) -> None:
        """Spawn the scheduler process."""
        if self._started:
            raise RuntimeError("kernel already started")
        self._started = True
        self.sim.spawn(self._scheduler(), name=f"{self.name}.sched")

    # -- scheduler -----------------------------------------------------------

    def _make_ready(self, task: RtosTask) -> None:
        task.state = TaskState.READY
        heapq.heappush(self._ready, (task.priority, next(self._seq), task))

    def _scheduler(self):
        while True:
            while not self._ready:
                # Idle until something becomes ready: poll the event the
                # wakers set.  A dedicated event per idle period keeps
                # the kernel free of busy-waiting.
                self._wakeup = self.sim.event(f"{self.name}.wakeup")
                self._idle = True
                yield self._wakeup
            self._idle = False
            _prio, _seq, task = heapq.heappop(self._ready)
            if task.state is not TaskState.READY:
                continue
            if self._current is not task and self._current is not None:
                self.switches += 1
                if self.context_switch_cycles > 0:
                    self.overhead_cycles += self.context_switch_cycles
                    yield Timeout(self.context_switch_cycles)
            self._current = task
            task.state = TaskState.RUNNING
            yield from self._run_command(task)

    def _wake(self, task: RtosTask) -> None:
        self._make_ready(task)
        if self._idle and not self._wakeup.triggered:
            self._wakeup.succeed(None)

    def _run_command(self, task: RtosTask):
        try:
            command = task.body.send(task._send_value)
        except StopIteration:
            task.state = TaskState.FINISHED
            task.completions += 1
            task.response_times.add(self.sim.now - task._activated_at)
            # _current is kept: dispatching the *next* task is a switch.
            return
        task._send_value = None
        kind = command[0]
        if kind == "compute":
            cycles = float(command[1])
            if cycles < 0:
                raise ValueError(f"task {task.name!r}: negative compute")
            self.busy_cycles += cycles
            yield Timeout(cycles)
            self._make_ready(task)
        elif kind == "sleep":
            delay = float(command[1])
            if delay < 0:
                raise ValueError(f"task {task.name!r}: negative sleep")
            task.state = TaskState.SLEEPING
            self.sim.schedule(delay, lambda: self._wake(task))
        elif kind == "acquire":
            semaphore = command[1]
            if semaphore.try_acquire():
                self._make_ready(task)
            else:
                task.state = TaskState.BLOCKED
                semaphore._enqueue(self, task)
        elif kind == "release":
            command[1]._release(self)
            self._make_ready(task)
        elif kind == "send":
            _kind, mailbox, message = command
            mailbox._send(self, message)
            self._make_ready(task)
        elif kind == "recv":
            mailbox = command[1]
            message = mailbox._try_recv()
            if message is not mailbox._EMPTY:
                task._send_value = message
                self._make_ready(task)
            else:
                task.state = TaskState.BLOCKED
                mailbox._enqueue(self, task)
        else:
            raise ValueError(
                f"task {task.name!r} yielded unknown command {command!r}"
            )

    # -- metrics -------------------------------------------------------------

    def utilization(self) -> float:
        """Useful compute fraction of elapsed time."""
        if self.sim.now <= 0:
            return 0.0
        return self.busy_cycles / self.sim.now

    def overhead_fraction(self) -> float:
        """Context-switch overhead fraction of elapsed time."""
        if self.sim.now <= 0:
            return 0.0
        return self.overhead_cycles / self.sim.now
