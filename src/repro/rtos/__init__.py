"""Ultra-lightweight embedded RTOS model.

Section 5.2 of the paper: "In the O/S domain, the main additional need
is for ultra-lightweight versions of these O/S's, which supply a level
of services tuned to the application domain.  In some cases, part of
the O/S services will need to be performed in hardware."

* :mod:`repro.rtos.kernel` — a priority-scheduled kernel over the DES
  substrate with a configurable context-switch cost (1 cycle models a
  hardware scheduler, hundreds model a software one — the quantitative
  content of "performed in hardware");
* :mod:`repro.rtos.sync` — semaphores and mailboxes;
* :mod:`repro.rtos.schedulability` — rate-monotonic analysis
  (Liu-Layland bound and exact response-time iteration).
"""

from repro.rtos.kernel import RtosKernel, RtosTask, TaskState
from repro.rtos.sync import Mailbox, Semaphore
from repro.rtos.schedulability import (
    PeriodicTaskSpec,
    liu_layland_bound,
    response_time_analysis,
    utilization,
)

__all__ = [
    "Mailbox",
    "PeriodicTaskSpec",
    "RtosKernel",
    "RtosTask",
    "Semaphore",
    "TaskState",
    "liu_layland_bound",
    "response_time_analysis",
    "utilization",
]
