"""StepNP platform configurations.

StepNP is "a System-Level Exploration Platform for Network Processors"
[Paulin et al. 2002], the reference platform of the paper's Section 7:
configurable multithreaded processors, a network-on-chip, reconfigurable
and standard hardware, and communication-oriented I/O.  These builders
produce the spec of Figure 2 at several scales; experiment E14 runs the
IPv4 fast path on them.
"""

from __future__ import annotations

from repro.noc.topology import TopologyKind
from repro.platform.spec import IoSpec, MemorySpec, PeSpec, PlatformSpec
from repro.processors.classes import ProcessorKind
from repro.processors.hwip import VITERBI


def stepnp_spec(
    num_pes: int = 16,
    threads: int = 8,
    topology: TopologyKind | str = TopologyKind.FAT_TREE,
    clock_ghz: float = 0.5,
    efpga_luts: int = 20_000,
    line_interfaces: int = 1,
) -> PlatformSpec:
    """Build a StepNP-style networking platform spec.

    Defaults follow the paper's large-scale experiment: 16 configurable
    PEs with 8 hardware threads each, a SPIN-style fat-tree NoC, an
    eFPGA tile, on-chip SRAM for the forwarding table, and a 10 Gbit/s
    line interface (SPI-4).
    """
    if num_pes < 1:
        raise ValueError(f"need >=1 PE, got {num_pes}")
    if isinstance(topology, str):
        topology = TopologyKind(topology)
    return PlatformSpec(
        name=f"stepnp-{num_pes}pe-{threads}t",
        pes=[
            PeSpec(
                kind=ProcessorKind.CONFIGURABLE_PROCESSOR,
                count=num_pes,
                threads=threads,
                clock_ghz=clock_ghz,
            )
        ],
        topology=topology,
        memories=[
            MemorySpec(technology="esram", capacity_mb=2.0),
            MemorySpec(technology="external_dram", capacity_mb=256.0),
        ],
        hw_ips=[VITERBI],
        ios=[IoSpec(family="spi4", count=line_interfaces)],
        efpga_luts=efpga_luts,
    )


#: A half-dozen-processor consumer-scale instance (the paper notes
#: current-generation consumer platforms "already include over a
#: half-dozen processors").
STEPNP_SMALL = stepnp_spec(num_pes=6, threads=4, topology=TopologyKind.MESH)

#: The large networking instance of Section 7.2's IPv4 demonstration.
STEPNP_LARGE = stepnp_spec(num_pes=16, threads=8)
