"""Platform configuration specifications.

A :class:`PlatformSpec` is the declarative description of an FPPA
instance: processor clusters, interconnect topology, memories, eFPGA,
hardwired IP and I/O.  The platform level of the paper's abstraction
stack does "specification, assembly and configuration of existing IP
blocks" — this spec is that configuration artifact, with validation and
area/power/transistor roll-ups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.memory.technology import MEMORY_TECHNOLOGIES
from repro.noc.topology import TopologyKind
from repro.processors.classes import FIGURE1_CLASSES, ProcessorKind
from repro.processors.hwip import HardwiredIp
from repro.processors.ioblocks import STANDARD_IO_FAMILIES

#: Logic transistors of one multithreaded PE (core + register banks).
PE_BASE_TRANSISTORS = 150_000.0
PE_TRANSISTORS_PER_THREAD = 18_000.0


@dataclass(frozen=True)
class PeSpec:
    """One homogeneous cluster of processing elements."""

    kind: ProcessorKind
    count: int
    threads: int = 4
    clock_ghz: float = 0.5

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"PE cluster needs >=1 element, got {self.count}")
        if self.threads < 1:
            raise ValueError(f"PE needs >=1 thread, got {self.threads}")
        if self.clock_ghz <= 0:
            raise ValueError(f"clock must be positive, got {self.clock_ghz}")

    def transistors(self) -> float:
        per_pe = PE_BASE_TRANSISTORS + self.threads * PE_TRANSISTORS_PER_THREAD
        return self.count * per_pe


@dataclass(frozen=True)
class MemorySpec:
    """One on-platform memory controller."""

    technology: str
    capacity_mb: float
    access_latency_cycles: float = 0.0   # 0 = use technology default

    def __post_init__(self) -> None:
        if self.technology not in MEMORY_TECHNOLOGIES:
            raise ValueError(
                f"unknown memory technology {self.technology!r}; "
                f"known: {', '.join(MEMORY_TECHNOLOGIES)}"
            )
        if self.capacity_mb <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity_mb}")

    def latency(self) -> float:
        if self.access_latency_cycles > 0:
            return self.access_latency_cycles
        return MEMORY_TECHNOLOGIES[self.technology].read_latency_cycles


@dataclass(frozen=True)
class IoSpec:
    """One I/O interface instance."""

    family: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.family not in STANDARD_IO_FAMILIES:
            raise ValueError(
                f"unknown I/O family {self.family!r}; "
                f"known: {', '.join(STANDARD_IO_FAMILIES)}"
            )
        if self.count < 1:
            raise ValueError(f"I/O count must be >=1, got {self.count}")


@dataclass
class PlatformSpec:
    """Complete FPPA platform description."""

    name: str
    pes: List[PeSpec] = field(default_factory=list)
    topology: TopologyKind = TopologyKind.MESH
    memories: List[MemorySpec] = field(default_factory=list)
    hw_ips: List[HardwiredIp] = field(default_factory=list)
    ios: List[IoSpec] = field(default_factory=list)
    efpga_luts: int = 0
    router_delay: float = 2.0

    def validate(self) -> None:
        """Check the spec is buildable."""
        if not self.pes:
            raise ValueError(f"platform {self.name!r} has no processors")
        for pe in self.pes:
            if pe.kind not in FIGURE1_CLASSES:
                raise ValueError(f"unknown processor kind {pe.kind}")
        if self.num_pes() < 1:
            raise ValueError("platform needs at least one PE")

    def num_pes(self) -> int:
        return sum(pe.count for pe in self.pes)

    def num_terminals(self) -> int:
        """NoC terminals: PEs + memories + HW IPs + I/Os (+1 eFPGA)."""
        io_count = sum(io.count for io in self.ios)
        efpga = 1 if self.efpga_luts > 0 else 0
        return self.num_pes() + len(self.memories) + len(self.hw_ips) + io_count + efpga

    def total_threads(self) -> int:
        return sum(pe.count * pe.threads for pe in self.pes)

    def logic_transistors(self) -> float:
        """Roll-up of PE + HW IP + I/O logic (4 transistors per gate)."""
        pe_tx = sum(pe.transistors() for pe in self.pes)
        ip_tx = sum(ip.gates * 4.0 for ip in self.hw_ips)
        io_tx = sum(
            STANDARD_IO_FAMILIES[io.family].gates * 4.0 * io.count
            for io in self.ios
        )
        efpga_tx = self.efpga_luts * 60.0  # config + LUT + routing mux
        return pe_tx + ip_tx + io_tx + efpga_tx

    def memory_capacity_mb(self) -> float:
        return sum(m.capacity_mb for m in self.memories)

    def summary(self) -> dict:
        """Report dict (the Figure-2 'platform composition' table)."""
        return {
            "name": self.name,
            "processors": self.num_pes(),
            "hardware_threads": self.total_threads(),
            "topology": self.topology.value,
            "memories": [
                f"{m.technology}:{m.capacity_mb}MB" for m in self.memories
            ],
            "hw_ips": [ip.name for ip in self.hw_ips],
            "ios": [f"{io.family}x{io.count}" for io in self.ios],
            "efpga_luts": self.efpga_luts,
            "logic_transistors": self.logic_transistors(),
            "terminals": self.num_terminals(),
        }
