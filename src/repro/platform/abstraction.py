"""The four abstraction levels of SoC design (Section 3).

The paper's first paradigm change: "SoC design will become divided into
four mostly non-overlapping distinct abstraction levels", each with its
own competences and tools.  This module encodes the levels as data and
provides the overlap check that quantifies "mostly non-overlapping".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet


@dataclass(frozen=True)
class AbstractionLevel:
    """One of the four levels.

    Attributes
    ----------
    number:
        1 (highest, application) .. 4 (lowest, technology).
    name:
        The paper's name for the level.
    actors:
        Who works at this level.
    artifacts:
        What they produce.
    competences:
        Skills required (used by the overlap metric).
    tools:
        Design-automation tool families needed.
    designs_hardware:
        Whether any hardware design happens at this level.
    """

    number: int
    name: str
    actors: str
    artifacts: tuple[str, ...]
    competences: FrozenSet[str]
    tools: tuple[str, ...]
    designs_hardware: bool


ABSTRACTION_LEVELS: dict[int, AbstractionLevel] = {
    lvl.number: lvl
    for lvl in [
        AbstractionLevel(
            number=1,
            name="system application design",
            actors="application specialists",
            artifacts=("embedded software", "algorithms", "platform configurations"),
            competences=frozenset(
                {
                    "domain algorithms",
                    "software engineering",
                    "modeling",
                    "parallel programming",
                }
            ),
            tools=(
                "matlab-class modeling",
                "sdl/esterel specification",
                "dataflow simulators",
                "software ide",
            ),
            designs_hardware=False,
        ),
        AbstractionLevel(
            number=2,
            name="mp-soc platform design",
            actors="platform architects",
            artifacts=(
                "platform configurations",
                "ip assemblies",
                "programming model bindings",
            ),
            competences=frozenset(
                {
                    "architecture exploration",
                    "performance analysis",
                    "ip integration",
                    "parallel programming",
                }
            ),
            tools=(
                "mapping/exploration tools",
                "tlm co-simulation",
                "noc configurators",
            ),
            designs_hardware=False,
        ),
        AbstractionLevel(
            number=3,
            name="high-level ip block design",
            actors="ip designers",
            artifacts=(
                "embedded processors",
                "noc interconnect",
                "standard i/o blocks",
                "standard-function hw ip",
            ),
            competences=frozenset(
                {
                    "rtl design",
                    "verification",
                    "processor microarchitecture",
                    "ip integration",
                }
            ),
            tools=("hdl simulators", "synthesis", "formal verification", "dft"),
            designs_hardware=True,
        ),
        AbstractionLevel(
            number=4,
            name="semiconductor technology and basic ip",
            actors="technology and library teams",
            artifacts=("standard cells", "memories", "i/o pads", "process kits"),
            competences=frozenset(
                {
                    "device physics",
                    "circuit design",
                    "signal integrity",
                    "verification",
                }
            ),
            tools=("spice", "library characterization", "physical verification"),
            designs_hardware=True,
        ),
    ]
}


def level(number: int) -> AbstractionLevel:
    """Look up a level by number (1-4)."""
    if number not in ABSTRACTION_LEVELS:
        raise KeyError(f"abstraction level must be 1..4, got {number}")
    return ABSTRACTION_LEVELS[number]


def competence_overlap(a: int, b: int) -> float:
    """Jaccard overlap of the competence sets of two levels.

    The paper's "mostly non-overlapping" claim means this should be
    small (but not zero — adjacent levels share a bridging skill).
    """
    la, lb = level(a), level(b)
    union = la.competences | lb.competences
    if not union:
        return 0.0
    return len(la.competences & lb.competences) / len(union)


def max_pairwise_overlap() -> float:
    """Largest overlap between any two distinct levels."""
    numbers = sorted(ABSTRACTION_LEVELS)
    return max(
        competence_overlap(a, b)
        for i, a in enumerate(numbers)
        for b in numbers[i + 1:]
    )


def hardware_design_levels() -> list[int]:
    """Levels at which hardware is actually designed.

    Per Section 3, "no hardware design is done" at level 1 and "as a
    rule, no IP design is done" at level 2 — only levels 3 and 4
    design hardware.
    """
    return [
        number
        for number, lvl in sorted(ABSTRACTION_LEVELS.items())
        if lvl.designs_hardware
    ]
