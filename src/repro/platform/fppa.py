"""FPPA platform instantiation (the paper's Figure 2).

:func:`build_platform` turns a :class:`~repro.platform.spec.PlatformSpec`
into a live simulation: a NoC with one terminal per component,
hardware-multithreaded PEs with OCP master sockets, memory-controller
slaves, hardwired-IP slaves, an eFPGA tile and line interfaces.  The
DSOC runtime and the mapping tools operate on the resulting
:class:`FppaPlatform`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.memory.technology import MEMORY_TECHNOLOGIES
from repro.noc.network import Network
from repro.noc.ocp import OcpMaster, OcpSlave
from repro.noc.topology import Topology, make_topology
from repro.platform.spec import PlatformSpec
from repro.processors.efpga import EfpgaFabric
from repro.processors.ioblocks import LineInterface, STANDARD_IO_FAMILIES
from repro.processors.multithread import HardwareMultithreadedPE
from repro.sim.core import Simulator


@dataclass
class PeBinding:
    """One instantiated processing element and its NoC socket."""

    index: int
    terminal: int
    pe: HardwareMultithreadedPE
    master: OcpMaster
    kind: str


@dataclass
class MemoryBinding:
    """One instantiated memory controller."""

    terminal: int
    technology: str
    capacity_mb: float
    slave: OcpSlave


@dataclass
class FppaPlatform:
    """A live FPPA instance: simulator, network and component bindings."""

    spec: PlatformSpec
    sim: Simulator
    topology: Topology
    network: Network
    pes: List[PeBinding] = field(default_factory=list)
    memories: List[MemoryBinding] = field(default_factory=list)
    hw_ip_slaves: Dict[str, OcpSlave] = field(default_factory=dict)
    line_interfaces: List[LineInterface] = field(default_factory=list)
    efpga: Optional[EfpgaFabric] = None
    free_terminals: List[int] = field(default_factory=list)

    def pe_terminals(self) -> List[int]:
        return [binding.terminal for binding in self.pes]

    def memory_terminal(self, technology: str | None = None) -> int:
        """Terminal of the first memory (optionally of a technology)."""
        for binding in self.memories:
            if technology is None or binding.technology == technology:
                return binding.terminal
        raise ValueError(
            f"platform has no memory"
            + (f" of technology {technology!r}" if technology else "")
        )

    def average_pe_utilization(self) -> float:
        """Mean useful-work utilization across all PEs."""
        if not self.pes:
            return 0.0
        return sum(b.pe.utilization() for b in self.pes) / len(self.pes)

    def min_pe_utilization(self) -> float:
        if not self.pes:
            return 0.0
        return min(b.pe.utilization() for b in self.pes)

    def total_completed_items(self) -> int:
        return sum(b.pe.completed_items for b in self.pes)

    def run(self, until: float) -> float:
        """Advance the simulation."""
        return self.sim.run(until=until)


def build_platform(spec: PlatformSpec, seed: int = 1) -> FppaPlatform:
    """Instantiate a platform spec into a live simulation.

    Terminal layout, in order: PEs, memories, hardwired IPs, I/O line
    interfaces, then the eFPGA tile (if any).
    """
    spec.validate()
    sim = Simulator()
    topology = make_topology(spec.topology, spec.num_terminals())
    network = Network(sim, topology, router_delay=spec.router_delay)
    platform = FppaPlatform(
        spec=spec, sim=sim, topology=topology, network=network
    )
    terminal = 0
    pe_index = 0
    for cluster in spec.pes:
        for _ in range(cluster.count):
            pe = HardwareMultithreadedPE(
                sim,
                num_threads=cluster.threads,
                swap_cycles=1.0,
                name=f"pe{pe_index}",
            )
            master = OcpMaster(network, terminal, name=f"pe{pe_index}.ocp")
            platform.pes.append(
                PeBinding(
                    index=pe_index,
                    terminal=terminal,
                    pe=pe,
                    master=master,
                    kind=cluster.kind.value,
                )
            )
            pe_index += 1
            terminal += 1
    for memory in spec.memories:
        slave = OcpSlave(
            network,
            terminal,
            access_latency=memory.latency(),
            name=f"mem.{memory.technology}@{terminal}",
        )
        platform.memories.append(
            MemoryBinding(
                terminal=terminal,
                technology=memory.technology,
                capacity_mb=memory.capacity_mb,
                slave=slave,
            )
        )
        terminal += 1
    for ip in spec.hw_ips:
        platform.hw_ip_slaves[ip.name] = ip.attach(network, terminal)
        terminal += 1
    for io in spec.ios:
        family = STANDARD_IO_FAMILIES[io.family]
        for _ in range(io.count):
            line = LineInterface(
                network,
                family,
                terminal,
                clock_ghz=spec.pes[0].clock_ghz,
            )
            platform.line_interfaces.append(line)
            terminal += 1
    if spec.efpga_luts > 0:
        platform.efpga = EfpgaFabric(luts=spec.efpga_luts)
        # The eFPGA tile still occupies a NoC terminal for reconfig/DMA.
        platform.free_terminals.append(terminal)
        terminal += 1
    return platform
