"""MP-SoC platform layer.

Builds the paper's Figure-2 "Field-Programmable Processor Array" (FPPA):
an array of (multithreaded) embedded processors, a network-on-chip,
embedded memory, an eFPGA tile, hardwired IP and communication I/O —
plus the StepNP networking instance used for the IPv4 experiments, and
the four-abstraction-level model of Section 3.
"""

from repro.platform.spec import (
    IoSpec,
    MemorySpec,
    PeSpec,
    PlatformSpec,
)
from repro.platform.fppa import FppaPlatform, build_platform
from repro.platform.stepnp import stepnp_spec, STEPNP_SMALL, STEPNP_LARGE
from repro.platform.abstraction import (
    ABSTRACTION_LEVELS,
    AbstractionLevel,
    competence_overlap,
    level,
)

__all__ = [
    "ABSTRACTION_LEVELS",
    "AbstractionLevel",
    "FppaPlatform",
    "IoSpec",
    "MemorySpec",
    "PeSpec",
    "PlatformSpec",
    "STEPNP_LARGE",
    "STEPNP_SMALL",
    "build_platform",
    "competence_overlap",
    "level",
    "stepnp_spec",
]
